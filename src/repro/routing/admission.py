"""Sequential flow admission — the Section 5.2 experiment driver.

Flows join the network one by one.  For each arriving flow:

1. the background traffic (already admitted flows) is scheduled optimally
   (minimum airtime), from which every node's channel idleness follows;
2. the routing metric, fed that distributed state, picks a path;
3. the *true* available bandwidth of that path is computed with the Eq. 6
   LP (or its column-generation solver);
4. the flow is admitted iff the truth covers its demand.

The paper stops the simulation at the first unsatisfied demand; that is
the default, and the failing flow's index is the headline of Fig. 3
(hop count fails at flow 3, e2eTD at flow 5, average-e2eD at flow 8 in the
paper's placement).

:class:`TwoHopAdmission` is the *distributed* counterpart (after
Ganesan-style 2-hop interference admission): instead of the centralized
Eq. 6 LP over every maximal independent set, each candidate-path link
admits against only its own interference neighborhood — the links it
conflicts with, which in protocol-type models a node can learn from its
2-hop neighbors.  The estimate is conservative bookkeeping, not an LP:
the airtime already consumed around a link plus the airtime the new flow
would add there must fit in one unit of channel time.  On single-clique
instances (everything conflicts with everything) the neighborhood *is*
the whole network and the closed form reproduces the Eq. 6 optimum
exactly; on sparser instances it ignores the scheduler's freedom to
overlap far-apart transmissions and under/over-shoots — experiment X6
prices that gap as an admitted-load ratio against the centralized
controller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple  # noqa: F401

from repro.core.bandwidth import (
    available_path_bandwidth,
    link_demands_from_paths,
    min_airtime_schedule,
)
from repro.core.column_generation import (
    min_airtime_column_generation,
    solve_with_column_generation,
)
from repro.errors import RoutingError
from repro.estimation.idle_time import node_idleness_from_schedule
from repro.interference.base import InterferenceModel, LinkRate
from repro.net.link import Link
from repro.net.path import Path
from repro.net.topology import Network
from repro.obs import get_recorder
from repro.routing.metrics import RoutingContext, RoutingMetric
from repro.routing.shortest_path import route
from repro.workloads.flows import Flow

__all__ = [
    "AdmissionOutcome",
    "AdmissionReport",
    "run_sequential_admission",
    "TwoHopEstimate",
    "TwoHopAdmission",
]


@dataclass(frozen=True)
class AdmissionOutcome:
    """What happened to one arriving flow."""

    flow: Flow
    path: Optional[Path]
    #: True available bandwidth of the chosen path (Eq. 6), NaN when
    #: routing found no path at all.
    available_bandwidth: float
    admitted: bool

    @property
    def routing_failed(self) -> bool:
        return self.path is None


@dataclass
class AdmissionReport:
    """Full trace of a sequential admission run."""

    metric_name: str
    outcomes: List[AdmissionOutcome] = field(default_factory=list)

    @property
    def admitted_flows(self) -> List[Flow]:
        return [o.flow for o in self.outcomes if o.admitted]

    @property
    def admitted_count(self) -> int:
        return len(self.admitted_flows)

    @property
    def first_failure_index(self) -> Optional[int]:
        """1-based index of the first rejected flow, or ``None``."""
        for position, outcome in enumerate(self.outcomes, start=1):
            if not outcome.admitted:
                return position
        return None

    def background(self) -> List[Tuple[Path, float]]:
        """Admitted traffic as (path, demand) pairs for the core LP."""
        return [flow.as_background() for flow in self.admitted_flows]

    def bandwidth_series(self) -> List[float]:
        """Per-arrival available bandwidth — the Fig. 3 data series."""
        return [o.available_bandwidth for o in self.outcomes]


def run_sequential_admission(
    network: Network,
    model: InterferenceModel,
    flows: Sequence[Flow],
    metric: RoutingMetric,
    stop_at_first_failure: bool = True,
    use_column_generation: bool = False,
    max_sets: Optional[int] = None,
    tolerance: float = 1e-6,
    router: Optional[
        Callable[[Flow, RoutingContext, List[Tuple[Path, float]]], Path]
    ] = None,
) -> AdmissionReport:
    """Run the Section 5.2 sequential admission experiment.

    Args:
        network, model: The substrate.
        flows: Arriving flows, in arrival order, with demands set.
        metric: The routing metric under evaluation.
        stop_at_first_failure: Stop at the first unsatisfied demand (the
            paper's protocol); when False, rejected flows are skipped and
            later arrivals still tried.
        use_column_generation: Solve the truth LP with column generation
            instead of full enumeration (for large instances).
        max_sets: Enumeration cap forwarded to the core.
        tolerance: Admission slack on the bandwidth comparison.
        router: Optional path-selection override,
            ``router(flow, context, background) -> Path``; raises
            :class:`~repro.errors.RoutingError` when it finds none.  The
            default routes with ``metric`` via Dijkstra.  Used by the X4
            joint-routing admission experiment.
    """
    report = AdmissionReport(metric_name=metric.name)
    admitted: List[Flow] = []
    for flow in flows:
        background = [f.as_background() for f in admitted]
        if background:
            if use_column_generation:
                schedule = min_airtime_column_generation(model, background)
            else:
                schedule = min_airtime_schedule(
                    model, background, max_sets=max_sets
                )
            idleness = node_idleness_from_schedule(network, schedule, model)
        else:
            idleness = None
        context = RoutingContext(model=model, node_idleness=idleness)
        try:
            if router is not None:
                path = router(flow, context, background)
            else:
                path = route(
                    network, flow.source, flow.destination, metric, context
                )
        except RoutingError:
            report.outcomes.append(
                AdmissionOutcome(
                    flow=flow,
                    path=None,
                    available_bandwidth=math.nan,
                    admitted=False,
                )
            )
            if stop_at_first_failure:
                break
            continue
        if use_column_generation:
            truth = solve_with_column_generation(
                model, path, background
            ).result
        else:
            truth = available_path_bandwidth(
                model, path, background, max_sets=max_sets
            )
        admitted_now = truth.supports(flow.demand_mbps, tolerance)
        routed_flow = flow.routed(path)
        report.outcomes.append(
            AdmissionOutcome(
                flow=routed_flow,
                path=path,
                available_bandwidth=truth.available_bandwidth,
                admitted=admitted_now,
            )
        )
        if admitted_now:
            admitted.append(routed_flow)
        elif stop_at_first_failure:
            break
    return report


@dataclass(frozen=True)
class TwoHopEstimate:
    """A distributed 2-hop admission estimate for one candidate path.

    ``per_link`` maps each path link to the bandwidth its neighborhood
    would grant; the path-wide answer is the minimum (clamped at zero),
    ``bottleneck`` names the minimizing link.
    """

    available_bandwidth: float
    bottleneck: Optional[str]
    per_link: Tuple[Tuple[str, float], ...]

    def supports(self, demand_mbps: float, tolerance: float = 1e-6) -> bool:
        """Whether the estimate covers ``demand_mbps`` (with slack)."""
        return self.available_bandwidth + tolerance >= demand_mbps


class TwoHopAdmission:
    """Distributed admission from per-link interference neighborhoods.

    Each link ``l`` of the candidate path runs the same local test a
    node could run from 2-hop neighborhood state: the links it conflicts
    with (the model's pairwise relation probed at maximum standalone
    rates, plus the half-duplex shared-node conflicts — exactly what
    RTS/CTS-style signalling exposes two hops out), their current
    airtime, and the airtime the new flow would add on the path links it
    overhears.  Writing ``tau_m = demand_m / rate_m`` for a background
    link and noting a new flow at rate ``f`` costs ``f / rate_m`` on
    every path link ``m``, link ``l`` grants::

        f_l = (1 - sum_{m in N[l], background} tau_m)
              / sum_{m in N[l], on path} (1 / rate_m)

    and the path admits at ``min_l f_l`` — no enumeration, no LP,
    O(|path| x |links|) conflict probes.  When every pair of links
    conflicts (single-clique instances) the unique maximal independent
    sets are singletons at top rate and this closed form *is* the Eq. 6
    optimum; ``repro verify`` pins that equality.
    """

    def __init__(self, model: InterferenceModel, tolerance: float = 1e-6):
        self.model = model
        self.tolerance = tolerance
        #: (link_id, link_id) → bool conflict memo (symmetric, probed at
        #: max standalone rates); neighborhoods are re-derived per
        #: estimate but the pairwise probes are stable per model.
        self._conflict_memo: dict = {}

    def _max_rate_mbps(self, link: Link) -> Optional[float]:
        rate = self.model.max_standalone_rate(link)
        return rate.mbps if rate is not None else None

    def _links_conflict(self, a: Link, b: Link) -> bool:
        """Pairwise conflict at max standalone rates (memoised)."""
        key = (
            (a.link_id, b.link_id)
            if a.link_id <= b.link_id
            else (b.link_id, a.link_id)
        )
        cached = self._conflict_memo.get(key)
        if cached is None:
            rate_a = self.model.max_standalone_rate(a)
            rate_b = self.model.max_standalone_rate(b)
            if rate_a is None or rate_b is None:
                cached = True  # unusable links block everything near them
            else:
                cached = self.model.conflicts(
                    LinkRate(a, rate_a), LinkRate(b, rate_b)
                )
            self._conflict_memo[key] = cached
        return cached

    def estimate(
        self,
        path: Path,
        background: Sequence[Tuple[Path, float]] = (),
    ) -> TwoHopEstimate:
        """The distributed estimate of ``path``'s available bandwidth."""
        get_recorder().count("twohop.estimates")
        demands = link_demands_from_paths(background)
        path_links = list(path)
        path_ids = {link.link_id for link in path_links}
        # Background links the path doesn't already carry (a link both
        # on the path and in the background contributes its background
        # airtime AND the new flow's — handled per neighborhood below).
        background_links = [
            link for link in demands if link.link_id not in path_ids
        ]
        per_link: List[Tuple[str, float]] = []
        bottleneck: Optional[str] = None
        answer = math.inf
        for link in path_links:
            rate = self._max_rate_mbps(link)
            if rate is None:
                per_link.append((link.link_id, 0.0))
                answer, bottleneck = 0.0, link.link_id
                break
            busy = 0.0
            for other in background_links:
                if other is link or self._links_conflict(link, other):
                    other_rate = self._max_rate_mbps(other)
                    if other_rate is None:
                        busy = math.inf
                        break
                    busy += demands[other] / other_rate
            # Path links already carrying background demand spend that
            # airtime too, on top of the new flow's share.
            for other in path_links:
                if other in demands and (
                    other is link or self._links_conflict(link, other)
                ):
                    other_rate = self._max_rate_mbps(other)
                    if other_rate is None:
                        busy = math.inf
                        break
                    busy += demands[other] / other_rate
            coefficient = 0.0
            for other in path_links:
                if other is link or self._links_conflict(link, other):
                    other_rate = self._max_rate_mbps(other)
                    if other_rate is None:
                        coefficient = math.inf
                        break
                    coefficient += 1.0 / other_rate
            granted = max(0.0, (1.0 - busy) / coefficient)
            per_link.append((link.link_id, granted))
            if granted < answer:
                answer, bottleneck = granted, link.link_id
        if not per_link:
            answer, bottleneck = 0.0, None
        return TwoHopEstimate(
            available_bandwidth=answer if math.isfinite(answer) else 0.0,
            bottleneck=bottleneck,
            per_link=tuple(per_link),
        )

    def admit(
        self,
        path: Path,
        demand_mbps: float,
        background: Sequence[Tuple[Path, float]] = (),
    ) -> bool:
        """Admission verdict: does the local estimate cover the demand?"""
        verdict = self.estimate(path, background).supports(
            demand_mbps, self.tolerance
        )
        get_recorder().count(
            "twohop.admitted" if verdict else "twohop.rejected"
        )
        return verdict
