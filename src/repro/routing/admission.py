"""Sequential flow admission — the Section 5.2 experiment driver.

Flows join the network one by one.  For each arriving flow:

1. the background traffic (already admitted flows) is scheduled optimally
   (minimum airtime), from which every node's channel idleness follows;
2. the routing metric, fed that distributed state, picks a path;
3. the *true* available bandwidth of that path is computed with the Eq. 6
   LP (or its column-generation solver);
4. the flow is admitted iff the truth covers its demand.

The paper stops the simulation at the first unsatisfied demand; that is
the default, and the failing flow's index is the headline of Fig. 3
(hop count fails at flow 3, e2eTD at flow 5, average-e2eD at flow 8 in the
paper's placement).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple  # noqa: F401

from repro.core.bandwidth import available_path_bandwidth, min_airtime_schedule
from repro.core.column_generation import (
    min_airtime_column_generation,
    solve_with_column_generation,
)
from repro.errors import RoutingError
from repro.estimation.idle_time import node_idleness_from_schedule
from repro.interference.base import InterferenceModel
from repro.net.path import Path
from repro.net.topology import Network
from repro.routing.metrics import RoutingContext, RoutingMetric
from repro.routing.shortest_path import route
from repro.workloads.flows import Flow

__all__ = ["AdmissionOutcome", "AdmissionReport", "run_sequential_admission"]


@dataclass(frozen=True)
class AdmissionOutcome:
    """What happened to one arriving flow."""

    flow: Flow
    path: Optional[Path]
    #: True available bandwidth of the chosen path (Eq. 6), NaN when
    #: routing found no path at all.
    available_bandwidth: float
    admitted: bool

    @property
    def routing_failed(self) -> bool:
        return self.path is None


@dataclass
class AdmissionReport:
    """Full trace of a sequential admission run."""

    metric_name: str
    outcomes: List[AdmissionOutcome] = field(default_factory=list)

    @property
    def admitted_flows(self) -> List[Flow]:
        return [o.flow for o in self.outcomes if o.admitted]

    @property
    def admitted_count(self) -> int:
        return len(self.admitted_flows)

    @property
    def first_failure_index(self) -> Optional[int]:
        """1-based index of the first rejected flow, or ``None``."""
        for position, outcome in enumerate(self.outcomes, start=1):
            if not outcome.admitted:
                return position
        return None

    def background(self) -> List[Tuple[Path, float]]:
        """Admitted traffic as (path, demand) pairs for the core LP."""
        return [flow.as_background() for flow in self.admitted_flows]

    def bandwidth_series(self) -> List[float]:
        """Per-arrival available bandwidth — the Fig. 3 data series."""
        return [o.available_bandwidth for o in self.outcomes]


def run_sequential_admission(
    network: Network,
    model: InterferenceModel,
    flows: Sequence[Flow],
    metric: RoutingMetric,
    stop_at_first_failure: bool = True,
    use_column_generation: bool = False,
    max_sets: Optional[int] = None,
    tolerance: float = 1e-6,
    router: Optional[
        Callable[[Flow, RoutingContext, List[Tuple[Path, float]]], Path]
    ] = None,
) -> AdmissionReport:
    """Run the Section 5.2 sequential admission experiment.

    Args:
        network, model: The substrate.
        flows: Arriving flows, in arrival order, with demands set.
        metric: The routing metric under evaluation.
        stop_at_first_failure: Stop at the first unsatisfied demand (the
            paper's protocol); when False, rejected flows are skipped and
            later arrivals still tried.
        use_column_generation: Solve the truth LP with column generation
            instead of full enumeration (for large instances).
        max_sets: Enumeration cap forwarded to the core.
        tolerance: Admission slack on the bandwidth comparison.
        router: Optional path-selection override,
            ``router(flow, context, background) -> Path``; raises
            :class:`~repro.errors.RoutingError` when it finds none.  The
            default routes with ``metric`` via Dijkstra.  Used by the X4
            joint-routing admission experiment.
    """
    report = AdmissionReport(metric_name=metric.name)
    admitted: List[Flow] = []
    for flow in flows:
        background = [f.as_background() for f in admitted]
        if background:
            if use_column_generation:
                schedule = min_airtime_column_generation(model, background)
            else:
                schedule = min_airtime_schedule(
                    model, background, max_sets=max_sets
                )
            idleness = node_idleness_from_schedule(network, schedule, model)
        else:
            idleness = None
        context = RoutingContext(model=model, node_idleness=idleness)
        try:
            if router is not None:
                path = router(flow, context, background)
            else:
                path = route(
                    network, flow.source, flow.destination, metric, context
                )
        except RoutingError:
            report.outcomes.append(
                AdmissionOutcome(
                    flow=flow,
                    path=None,
                    available_bandwidth=math.nan,
                    admitted=False,
                )
            )
            if stop_at_first_failure:
                break
            continue
        if use_column_generation:
            truth = solve_with_column_generation(
                model, path, background
            ).result
        else:
            truth = available_path_bandwidth(
                model, path, background, max_sets=max_sets
            )
        admitted_now = truth.supports(flow.demand_mbps, tolerance)
        routed_flow = flow.routed(path)
        report.outcomes.append(
            AdmissionOutcome(
                flow=routed_flow,
                path=path,
                available_bandwidth=truth.available_bandwidth,
                admitted=admitted_now,
            )
        )
        if admitted_now:
            admitted.append(routed_flow)
        elif stop_at_first_failure:
            break
    return report
