"""Routing metrics (Section 4, Eq. 14, and the Section 5.2 comparison).

A metric assigns every link an additive weight; the best route minimises
the sum.  Weights may depend on the distributed state — each link's
effective rate and idleness ratio — carried by a :class:`RoutingContext`.

The three metrics of Fig. 3:

* **hop count** — the classical baseline, blind to both rates and load;
* **e2eTD** (end-to-end transmission delay) — Σ 1/r_i, the reference [1]
  metric, rate-aware but load-blind;
* **average-e2eD** (average end-to-end delay, Eq. 14) — Σ 1/(λ_i·r_i),
  both rate- and load-aware; the paper's recommendation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.estimation.idle_time import link_idleness
from repro.interference.base import InterferenceModel
from repro.net.link import Link
from repro.phy.rates import Rate

__all__ = [
    "RoutingContext",
    "RoutingMetric",
    "HopCountMetric",
    "E2eTransmissionDelayMetric",
    "AverageE2eDelayMetric",
    "METRICS",
]

#: Idleness below this is treated as a fully busy neighbourhood: the link
#: is unusable for new traffic and gets an infinite weight.
_MIN_IDLENESS = 1e-9


@dataclass
class RoutingContext:
    """Distributed link state a metric may consult.

    Attributes:
        model: The interference model (supplies effective rates).
        node_idleness: λ_idle per node id; ``None`` means a load-free
            network (all idleness 1), which reduces average-e2eD to e2eTD.
    """

    model: InterferenceModel
    node_idleness: Optional[Mapping[str, float]] = None
    _rate_cache: Dict[str, Optional[Rate]] = field(default_factory=dict)

    def link_rate(self, link: Link) -> Optional[Rate]:
        """Effective data rate: the link's maximum standalone rate."""
        if link.link_id not in self._rate_cache:
            self._rate_cache[link.link_id] = self.model.max_standalone_rate(link)
        return self._rate_cache[link.link_id]

    def link_idleness(self, link: Link) -> float:
        """Eq. 10's λ_i (1.0 when no idleness information is attached)."""
        if self.node_idleness is None:
            return 1.0
        return link_idleness(link, self.node_idleness)


class RoutingMetric(ABC):
    """An additive link-weight routing metric."""

    #: Machine name for registries and experiment tables.
    name: str = "metric"
    #: Paper display label.
    label: str = "metric"

    @abstractmethod
    def weight(self, link: Link, context: RoutingContext) -> float:
        """Additive weight of ``link``; ``math.inf`` excludes it."""

    def path_cost(self, path, context: RoutingContext) -> float:
        """Total metric value of a path (sum of link weights)."""
        return sum(self.weight(link, context) for link in path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class HopCountMetric(RoutingMetric):
    """Every usable link weighs 1."""

    name = "hop-count"
    label = "hop count"

    def weight(self, link: Link, context: RoutingContext) -> float:
        if context.link_rate(link) is None:
            return math.inf
        return 1.0


class E2eTransmissionDelayMetric(RoutingMetric):
    """e2eTD: transmission time per unit of traffic, Σ 1/r_i."""

    name = "e2eTD"
    label = "end-to-end transmission delay"

    def weight(self, link: Link, context: RoutingContext) -> float:
        rate = context.link_rate(link)
        if rate is None:
            return math.inf
        return 1.0 / rate.mbps


class AverageE2eDelayMetric(RoutingMetric):
    """average-e2eD (Eq. 14): Σ 1/(λ_i·r_i).

    The expected per-unit delay when only a λ_i share of the channel is
    available to the link; heavily loaded neighbourhoods become expensive
    and the route detours around background traffic.
    """

    name = "average-e2eD"
    label = "average end-to-end delay"

    def weight(self, link: Link, context: RoutingContext) -> float:
        rate = context.link_rate(link)
        if rate is None:
            return math.inf
        idleness = context.link_idleness(link)
        if idleness <= _MIN_IDLENESS:
            return math.inf
        return 1.0 / (idleness * rate.mbps)


#: The Fig. 3 metric line-up, in the paper's presentation order.
METRICS: Dict[str, RoutingMetric] = {
    metric.name: metric
    for metric in (
        HopCountMetric(),
        E2eTransmissionDelayMetric(),
        AverageE2eDelayMetric(),
    )
}
