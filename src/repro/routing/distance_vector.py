"""Distributed distance-vector routing (Section 4's setting, literally).

The paper argues for distributed algorithms: "each intermediate node on a
path estimates the available bandwidth from the source to itself ... and
uses it in distributed routing algorithms as any other routing metrics
such as hop count."  This module simulates exactly that protocol for the
additive metrics: synchronous rounds in which every node advertises its
best known cost to each destination and neighbours relax their tables
(distributed Bellman–Ford, the core of DSDV/AODV-style protocols).

Besides the routes themselves (which must equal Dijkstra's costs — a
cross-validation test asserts it), the simulation reports **convergence
rounds**, the quantity a deployment actually pays for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import RoutingError
from repro.net.path import Path
from repro.net.topology import Network
from repro.routing.metrics import RoutingContext, RoutingMetric

__all__ = ["DistanceVectorTable", "run_distance_vector"]


@dataclass
class DistanceVectorTable:
    """Converged routing state.

    Attributes:
        costs: ``costs[node][destination]`` — best metric cost known at
            ``node`` for reaching ``destination`` (∞ if unreachable).
        next_hops: ``next_hops[node][destination]`` — chosen neighbour.
        rounds: Synchronous exchange rounds until no table changed.
    """

    costs: Dict[str, Dict[str, float]]
    next_hops: Dict[str, Dict[str, Optional[str]]]
    rounds: int

    def cost(self, source: str, destination: str) -> float:
        return self.costs[source][destination]

    def path(self, network: Network, source: str, destination: str) -> Path:
        """Materialise the forwarding path the tables induce."""
        if math.isinf(self.cost(source, destination)):
            raise RoutingError(
                f"no route {source!r} -> {destination!r} in the converged "
                "tables",
                source=source,
                destination=destination,
            )
        links = []
        current = source
        visited = {source}
        while current != destination:
            nxt = self.next_hops[current][destination]
            if nxt is None or nxt in visited:
                raise RoutingError(
                    f"forwarding loop or dead end at {current!r} toward "
                    f"{destination!r}",
                    source=source,
                    destination=destination,
                )
            links.append(network.link_between(current, nxt))
            visited.add(nxt)
            current = nxt
        return Path(links)


def run_distance_vector(
    network: Network,
    metric: RoutingMetric,
    context: RoutingContext,
    max_rounds: int = 1000,
) -> DistanceVectorTable:
    """Run synchronous distributed Bellman–Ford to convergence.

    Every round, each node sends its current cost vector to its in-
    neighbours, which relax ``cost(u, d) = min over links u->v of
    weight(u->v) + cost(v, d)``.  With non-negative weights the process
    converges within |V| − 1 rounds; ``max_rounds`` is a safety net.

    Raises:
        RoutingError: if convergence is not reached within ``max_rounds``
            (cannot happen with finite non-negative weights; guards
            against pathological metric implementations).
    """
    node_ids = [node.node_id for node in network.nodes]
    costs: Dict[str, Dict[str, float]] = {
        u: {d: (0.0 if u == d else math.inf) for d in node_ids}
        for u in node_ids
    }
    next_hops: Dict[str, Dict[str, Optional[str]]] = {
        u: {d: None for d in node_ids} for u in node_ids
    }
    weights: Dict[Tuple[str, str], float] = {}
    for link in network.links:
        weight = metric.weight(link, context)
        if weight < 0:
            raise RoutingError(
                f"metric {metric.name} produced a negative weight on "
                f"{link.link_id!r}"
            )
        weights[(link.sender.node_id, link.receiver.node_id)] = weight

    for round_index in range(1, max_rounds + 1):
        changed = False
        for (u, v), weight in weights.items():
            if math.isinf(weight):
                continue
            for destination in node_ids:
                candidate = weight + costs[v][destination]
                if candidate < costs[u][destination] - 1e-15:
                    costs[u][destination] = candidate
                    next_hops[u][destination] = v
                    changed = True
        if not changed:
            return DistanceVectorTable(
                costs=costs, next_hops=next_hops, rounds=round_index
            )
    raise RoutingError(
        f"distance vector did not converge within {max_rounds} rounds"
    )
