"""QoS routing with background traffic (Section 4 / 5.2).

Additive routing metrics (hop count, end-to-end transmission delay,
average end-to-end delay) run through Dijkstra; the estimate-maximising
"widest path" router implements the paper's proposal of using per-prefix
available-bandwidth estimates as a distributed routing metric.  The
sequential admission driver reproduces the Section 5.2 experiment: flows
join one by one, each over the path its metric picks, until a demand
cannot be met.
"""

from repro.routing.admission import (
    AdmissionOutcome,
    AdmissionReport,
    TwoHopAdmission,
    TwoHopEstimate,
    run_sequential_admission,
)
from repro.routing.distance_vector import (
    DistanceVectorTable,
    run_distance_vector,
)
from repro.routing.joint import JointRouteResult, joint_widest_route
from repro.routing.k_shortest import k_shortest_paths
from repro.routing.metrics import (
    METRICS,
    AverageE2eDelayMetric,
    E2eTransmissionDelayMetric,
    HopCountMetric,
    RoutingContext,
    RoutingMetric,
)
from repro.routing.shortest_path import route
from repro.routing.widest_path import widest_estimate_route

__all__ = [
    "RoutingMetric",
    "RoutingContext",
    "HopCountMetric",
    "E2eTransmissionDelayMetric",
    "AverageE2eDelayMetric",
    "METRICS",
    "route",
    "widest_estimate_route",
    "k_shortest_paths",
    "joint_widest_route",
    "JointRouteResult",
    "run_distance_vector",
    "DistanceVectorTable",
    "run_sequential_admission",
    "AdmissionOutcome",
    "AdmissionReport",
    "TwoHopAdmission",
    "TwoHopEstimate",
]
