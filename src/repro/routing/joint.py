"""Joint QoS routing and link scheduling (Section 4).

The paper poses the joint problem — find the source–destination path with
the highest Eq. 6 available bandwidth, considering every link in the
network — notes it is NP-hard, and retreats to distributed heuristics.
This module implements the natural centralised approximation the
formulation invites:

1. generate metric-diverse candidate paths (Yen's k-shortest under one or
   several routing metrics);
2. score every candidate with the **exact** Eq. 6 LP against the given
   background traffic;
3. return the widest.

Because each candidate's score is exact, the result is a certified lower
bound on the joint optimum that is at least as good as any single-metric
route — the property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bandwidth import available_path_bandwidth
from repro.core.column_generation import solve_with_column_generation
from repro.errors import RoutingError
from repro.interference.base import InterferenceModel
from repro.net.path import Path
from repro.net.topology import Network
from repro.routing.k_shortest import k_shortest_paths
from repro.routing.metrics import METRICS, RoutingContext, RoutingMetric

__all__ = ["JointRouteResult", "joint_widest_route"]


@dataclass
class JointRouteResult:
    """Winner plus the full scored candidate list (widest first)."""

    best_path: Path
    best_bandwidth: float
    #: Every distinct candidate with its exact Eq. 6 score.
    candidates: List[Tuple[Path, float]]

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)


def joint_widest_route(
    network: Network,
    model: InterferenceModel,
    source: str,
    destination: str,
    background: Sequence[Tuple[Path, float]] = (),
    metrics: Optional[Sequence[RoutingMetric]] = None,
    k: int = 3,
    context: Optional[RoutingContext] = None,
    use_column_generation: bool = True,
) -> JointRouteResult:
    """Best-of-candidates joint routing (see module docstring).

    Args:
        metrics: Candidate generators; defaults to all three paper metrics
            (their k-shortest sets overlap but rarely coincide, giving a
            diverse pool).
        k: Candidates per metric.
        context: Routing context for metric weights; defaults to one with
            no idleness information (candidate *scoring* uses the exact LP
            regardless, so the context only shapes the candidate pool).
        use_column_generation: Score with the CG solver (scales better on
            big unions) or full enumeration.

    Raises:
        RoutingError: when no metric can produce any candidate.
    """
    if metrics is None:
        metrics = list(METRICS.values())
    if context is None:
        context = RoutingContext(model=model)

    pool: Dict[Path, None] = {}
    failures = 0
    for metric in metrics:
        try:
            for path in k_shortest_paths(
                network, source, destination, metric, context, k=k
            ):
                pool.setdefault(path)
        except RoutingError:
            failures += 1
    if not pool:
        raise RoutingError(
            f"no candidate route {source!r} -> {destination!r} under any "
            f"of {len(list(metrics))} metrics",
            source=source,
            destination=destination,
        )

    scored: List[Tuple[Path, float]] = []
    for path in pool:
        if use_column_generation:
            value = solve_with_column_generation(
                model, path, background
            ).result.available_bandwidth
        else:
            value = available_path_bandwidth(
                model, path, background
            ).available_bandwidth
        scored.append((path, value))
    scored.sort(key=lambda item: (-item[1], str(item[0])))
    best_path, best_bandwidth = scored[0]
    return JointRouteResult(
        best_path=best_path,
        best_bandwidth=best_bandwidth,
        candidates=scored,
    )
