"""Estimate-maximising routing ("widest path" under a Section 4 estimator).

The paper proposes using the minimum estimated available bandwidth over
local maximal cliques "as routing metrics ... Each intermediate node on a
path estimates the available bandwidth from the source to itself on that
path, and uses it in distributed routing algorithms as any other routing
metric."  That is a distance-vector style computation: every node keeps
the best source-to-self estimate seen so far and advertises it.

This module implements exactly that as a label-setting search: labels are
path prefixes scored by the estimator applied to the prefix; the node with
the best (largest) score expands next, and each node retains only its best
score.  Because every estimator here is monotone non-increasing in path
extension (adding a hop adds constraints), the first label settled at the
destination is the best achievable *per-node-greedy* route — the same
answer a distributed protocol would converge to, though not always the
global optimum (the underlying joint problem is NP-hard; Section 4 notes
this and settles for distributed algorithms, as we do).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Mapping, Tuple

from repro.errors import RoutingError
from repro.estimation.estimators import PathBandwidthEstimator
from repro.estimation.idle_time import path_state_for
from repro.interference.base import InterferenceModel
from repro.net.path import Path
from repro.net.topology import Network

__all__ = ["widest_estimate_route"]


def widest_estimate_route(
    network: Network,
    model: InterferenceModel,
    source: str,
    destination: str,
    estimator: PathBandwidthEstimator,
    node_idleness: Mapping[str, float],
) -> Tuple[Path, float]:
    """Route maximising the estimator's prefix score; returns (path, score).

    Raises:
        RoutingError: when no path with a positive estimate exists.
    """
    network.node(source)
    network.node(destination)
    graph = network.to_digraph()

    counter = itertools.count()  # tie-breaker keeping heap entries orderable
    best_score: Dict[str, float] = {source: float("inf")}
    # Max-heap via negated scores: (−score, tiebreak, node, links so far).
    frontier: List[Tuple[float, int, str, Tuple]] = [
        (-float("inf"), next(counter), source, ())
    ]
    settled: set = set()
    while frontier:
        negative, _tie, node, links = heapq.heappop(frontier)
        score = -negative
        if node in settled:
            continue
        settled.add(node)
        if node == destination:
            return Path(list(links)), score
        visited_nodes = {source}
        for link in links:
            visited_nodes.add(link.receiver.node_id)
        for _u, neighbour, data in graph.out_edges(node, data=True):
            if neighbour in visited_nodes or neighbour in settled:
                continue
            link = data["link"]
            if model.max_standalone_rate(link) is None:
                continue
            candidate_links = links + (link,)
            state = path_state_for(
                model, Path(list(candidate_links)), node_idleness
            )
            estimate = estimator.estimate(state)
            if estimate <= 0.0:
                continue
            if estimate > best_score.get(neighbour, 0.0):
                best_score[neighbour] = estimate
                heapq.heappush(
                    frontier,
                    (-estimate, next(counter), neighbour, candidate_links),
                )
    raise RoutingError(
        f"no route {source!r} -> {destination!r} with positive "
        f"{estimator.name} estimate",
        source=source,
        destination=destination,
    )
