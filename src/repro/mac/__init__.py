"""Slotted CSMA/CA MAC simulator.

The paper's Section 1/4 argue from the behaviour of a contention MAC
(IEEE 802.11 [13]): nodes carrier-sense, defer, back off, and measure
channel idleness — and that measured idleness systematically mis-estimates
what an optimal scheduler could deliver (Scenario I).  This package is the
packet-level substitute for the paper's unstated simulator: a slotted
CSMA/CA model with DIFS deferral, binary exponential backoff, hidden- and
exposed-terminal effects, and per-node busy/idle accounting whose output
plugs directly into the Section 4 estimators.
"""

from repro.mac.config import CsmaConfig
from repro.mac.simulator import CsmaSimulator, simulate_background
from repro.mac.stats import LinkStats, MacReport
from repro.mac.tdma import FlowStats, TdmaFlowReport, simulate_frame_flows

__all__ = [
    "CsmaConfig",
    "CsmaSimulator",
    "simulate_background",
    "MacReport",
    "LinkStats",
    "FlowStats",
    "TdmaFlowReport",
    "simulate_frame_flows",
]
