"""CSMA/CA simulator parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CsmaConfig"]


@dataclass(frozen=True)
class CsmaConfig:
    """Slotted CSMA/CA knobs.

    The defaults loosely follow 802.11 DCF proportions (a data frame lasts
    tens of slots, DIFS a few, CW doubles from 16 up to 1024) without
    modelling microsecond timings — every consumer of the simulator reads
    *ratios* (idleness, delivered share), which are insensitive to the
    absolute slot length.

    Attributes:
        packet_slots: Transmission duration of one frame, in slots.
        difs_slots: Idle slots a station must observe before backoff
            counts down.
        cw_min, cw_max: Contention-window bounds (slots); the window
            doubles after every failed attempt and resets on success.
        max_retries: Attempts before a frame is dropped.
        sim_slots: Simulated horizon.
        warmup_slots: Leading slots excluded from statistics, letting
            queues and windows reach steady state.
        rts_cts: Enable the RTS/CTS handshake abstraction: stations also
            defer to transmissions whose *receiver* they can hear (the
            CTS establishes a NAV around the receiver), which suppresses
            most hidden-terminal data collisions; only same-slot starts
            of conflicting links still collide (RTS collision window).
    """

    packet_slots: int = 40
    difs_slots: int = 3
    cw_min: int = 16
    cw_max: int = 1024
    max_retries: int = 7
    sim_slots: int = 200_000
    warmup_slots: int = 10_000
    rts_cts: bool = False

    def __post_init__(self) -> None:
        if self.packet_slots < 1:
            raise ConfigurationError("packet_slots must be >= 1")
        if self.difs_slots < 0:
            raise ConfigurationError("difs_slots must be >= 0")
        if not 1 <= self.cw_min <= self.cw_max:
            raise ConfigurationError("need 1 <= cw_min <= cw_max")
        if self.max_retries < 1:
            raise ConfigurationError("max_retries must be >= 1")
        if self.sim_slots <= self.warmup_slots:
            raise ConfigurationError("sim_slots must exceed warmup_slots")
