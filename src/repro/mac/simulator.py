"""The slotted CSMA/CA simulator.

A deliberately compact but honest DCF model: per-slot carrier sensing at
the transmitter, DIFS deferral, uniform backoff drawn from a doubling
contention window, fixed-length frames, collision on any slot overlap with
a *conflicting* link (so hidden terminals collide and exposed terminals
serialise — exactly the pathologies Scenario I builds on), retransmission
up to a retry cap.

What it measures is what Section 4 consumes: per-node channel idleness
(the carrier-sense view of the world) and per-link delivered throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


from repro.errors import SimulationError
from repro.interference.base import InterferenceModel, LinkRate
from repro.mac.config import CsmaConfig
from repro.mac.stats import LinkStats, MacReport
from repro.net.link import Link
from repro.net.path import Path
from repro.net.topology import Network
from repro.obs import get_recorder
from repro.rng import SeedLike, make_rng

__all__ = ["CsmaSimulator", "simulate_background"]

#: Queue capacity per link; arrivals beyond it are dropped silently, which
#: only matters far past saturation.
_QUEUE_CAP = 64


@dataclass
class _LinkState:
    """Mutable per-link simulation state."""

    link: Link
    rate_mbps: float
    arrival_prob: float
    queue: int = 0
    difs_progress: int = 0
    backoff: int = -1  # -1: no backoff drawn yet
    cw: int = 16
    retries: int = 0
    tx_remaining: int = 0
    tx_corrupted: bool = False

    @property
    def transmitting(self) -> bool:
        return self.tx_remaining > 0


class CsmaSimulator:
    """Simulate CSMA/CA contention among a set of loaded links.

    Args:
        network: The substrate (geometry decides hearing when available).
        model: Interference model; decides which overlaps corrupt frames
            and, on abstract networks, doubles as the hearing relation.
        offered_load: Map from link id to offered airtime share in [0, 1]
            (a share of 0.3 ≈ the link tries to occupy 30% of the channel,
            the paper's λ).
        config: MAC timing knobs.
        seed: Randomness for arrivals and backoff draws.
    """

    def __init__(
        self,
        network: Network,
        model: InterferenceModel,
        offered_load: Mapping[str, float],
        config: CsmaConfig = CsmaConfig(),
        seed: SeedLike = None,
    ):
        self.network = network
        self.model = model
        self.config = config
        self._rng = make_rng(seed)

        self._states: List[_LinkState] = []
        for link_id, share in sorted(offered_load.items()):
            if not 0.0 <= share <= 1.0:
                raise SimulationError(
                    f"offered load for {link_id!r} must be in [0, 1]"
                )
            link = network.link(link_id)
            rate = model.max_standalone_rate(link)
            if rate is None:
                raise SimulationError(
                    f"link {link_id!r} supports no rate"
                )
            self._states.append(
                _LinkState(
                    link=link,
                    rate_mbps=rate.mbps,
                    arrival_prob=share / config.packet_slots,
                    cw=config.cw_min,
                )
            )
        self._conflicts = self._pairwise_conflicts()
        self._sender_hears = self._hearing_matrix()
        self._defers_to = self._deferral_matrix()

    # -- precomputed relations ---------------------------------------------------

    def _used_couple(self, state: _LinkState) -> LinkRate:
        rate = self.model.max_standalone_rate(state.link)
        return LinkRate(state.link, rate)

    def _pairwise_conflicts(self) -> List[List[bool]]:
        n = len(self._states)
        couples = [self._used_couple(s) for s in self._states]
        matrix = [[False] * n for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                conflict = self.model.conflicts(couples[i], couples[j])
                matrix[i][j] = conflict
                matrix[j][i] = conflict
        return matrix

    def _hears(self, listener_node: str, transmitter_index: int) -> bool:
        transmitter = self._states[transmitter_index].link.sender.node_id
        if listener_node == transmitter:
            return True
        if self.network.is_geometric:
            return self.network.can_hear(listener_node, transmitter)
        # Abstract networks: hearing falls back to interference, as in the
        # paper's textbook scenarios ("interferes with and hears").  All of
        # the listener's links count, loaded or not — an unloaded link
        # still makes its endpoints sense conflicting transmissions.
        transmitting_couple = self._used_couple(
            self._states[transmitter_index]
        )
        for own in self.network.links:
            if listener_node not in own.endpoints:
                continue
            if own == transmitting_couple.link:
                return True
            own_rates = self.model.standalone_rates(own)
            if own_rates and self.model.conflicts(
                LinkRate(own, own_rates[-1]), transmitting_couple
            ):
                return True
        return False

    def _hearing_matrix(self) -> List[List[bool]]:
        """``[i][j]``: sender of link i hears the transmission of link j."""
        n = len(self._states)
        matrix = [[False] * n for _ in range(n)]
        for i, state in enumerate(self._states):
            for j in range(n):
                if i == j:
                    matrix[i][j] = True
                    continue
                matrix[i][j] = self._hears(state.link.sender.node_id, j)
        return matrix

    def _deferral_matrix(self) -> List[List[bool]]:
        """``[i][j]``: link i's sender defers while link j transmits.

        Physical carrier sensing always defers to audible senders; with
        RTS/CTS the receiver's CTS additionally silences every station in
        *its* neighbourhood, so hearing link j's receiver defers too.
        """
        matrix = [row[:] for row in self._sender_hears]
        if not self.config.rts_cts:
            return matrix
        for i, state in enumerate(self._states):
            sender = state.link.sender.node_id
            for j, other in enumerate(self._states):
                if matrix[i][j] or i == j:
                    continue
                receiver = other.link.receiver.node_id
                if self.network.is_geometric:
                    heard = self.network.can_hear(sender, receiver)
                else:
                    # Abstract fallback: hearing == interference, and the
                    # conflict relation already encodes proximity to the
                    # receiver.
                    heard = self._conflicts[i][j]
                matrix[i][j] = heard
        return matrix

    # -- main loop --------------------------------------------------------------------

    def run(self) -> MacReport:
        recorder = get_recorder()
        with recorder.span("mac.run"):
            report = self._run()
        # Roll the per-link counters up once per run; the slot loop itself
        # stays recorder-free.
        recorder.count("mac.slots", self.config.sim_slots)
        for link_stats in report.per_link.values():
            recorder.count("mac.attempts", link_stats.attempts)
            recorder.count("mac.collisions", link_stats.collisions)
            recorder.count("mac.successes", link_stats.successes)
            recorder.count("mac.drops", link_stats.drops)
        return report

    def _run(self) -> MacReport:
        config = self.config
        states = self._states
        n = len(states)
        node_ids = [node.node_id for node in self.network.nodes]
        node_busy = {node_id: 0 for node_id in node_ids}
        stats = {
            s.link.link_id: LinkStats(
                link_id=s.link.link_id, rate_mbps=s.rate_mbps
            )
            for s in states
        }
        measured = 0
        arrivals = self._rng.random((config.sim_slots, n))

        for slot in range(config.sim_slots):
            measuring = slot >= config.warmup_slots
            if measuring:
                measured += 1

            # 1. Arrivals.
            for i, state in enumerate(states):
                if arrivals[slot, i] < state.arrival_prob:
                    state.queue = min(_QUEUE_CAP, state.queue + 1)

            transmitting = [i for i, s in enumerate(states) if s.transmitting]

            # 2. Contention decisions, based on the channel as currently
            #    occupied (carrier sensing sees ongoing frames, not the
            #    ones about to start in this very slot — that race is what
            #    makes same-slot starts collide).
            starters: List[int] = []
            for i, state in enumerate(states):
                if state.transmitting or state.queue == 0:
                    continue
                busy = any(self._defers_to[i][j] for j in transmitting)
                if busy:
                    state.difs_progress = 0
                    continue
                if state.difs_progress < config.difs_slots:
                    state.difs_progress += 1
                    continue
                if state.backoff < 0:
                    state.backoff = int(self._rng.integers(0, state.cw))
                if state.backoff > 0:
                    state.backoff -= 1
                    continue
                starters.append(i)

            for i in starters:
                state = states[i]
                state.backoff = -1
                state.tx_remaining = config.packet_slots
                state.tx_corrupted = False
                if measuring:
                    stats[state.link.link_id].attempts += 1

            # 3. Corruption: any overlap between conflicting links corrupts
            #    both frames (symmetric loss keeps the model simple and
            #    conservative — 802.11 loses at least the victim's frame).
            active = [i for i, s in enumerate(states) if s.transmitting]
            for i in active:
                if states[i].tx_corrupted:
                    continue
                for j in active:
                    if j != i and self._conflicts[i][j]:
                        states[i].tx_corrupted = True
                        break

            # 4. Node busy accounting.
            if measuring and active:
                for node_id in node_ids:
                    heard = any(self._hears(node_id, j) for j in active)
                    receiving = any(
                        node_id in states[j].link.endpoints for j in active
                    )
                    if heard or receiving:
                        node_busy[node_id] += 1

            # 5. Advance transmissions.
            for i in active:
                state = states[i]
                if measuring:
                    stats[state.link.link_id].tx_slots += 1
                state.tx_remaining -= 1
                if state.tx_remaining == 0:
                    self._finish_frame(state, stats, measuring, config)

        if measured == 0:
            raise SimulationError("simulation ended inside warmup")
        for link_stats in stats.values():
            link_stats._measured_slots = measured
        idleness = {
            node_id: 1.0 - busy / measured
            for node_id, busy in node_busy.items()
        }
        return MacReport(
            measured_slots=measured,
            node_idleness=idleness,
            per_link=stats,
        )

    def _finish_frame(
        self,
        state: _LinkState,
        stats: Dict[str, LinkStats],
        measuring: bool,
        config: CsmaConfig,
    ) -> None:
        link_stats = stats[state.link.link_id]
        if state.tx_corrupted:
            if measuring:
                link_stats.collisions += 1
            state.retries += 1
            state.cw = min(state.cw * 2, config.cw_max)
            if state.retries > config.max_retries:
                state.queue -= 1
                state.retries = 0
                state.cw = config.cw_min
                if measuring:
                    link_stats.drops += 1
        else:
            if measuring:
                link_stats.successes += 1
                link_stats.good_slots += config.packet_slots
            state.queue -= 1
            state.retries = 0
            state.cw = config.cw_min
        state.tx_corrupted = False


def simulate_background(
    network: Network,
    model: InterferenceModel,
    background: Sequence[Tuple[Path, float]],
    config: CsmaConfig = CsmaConfig(),
    seed: SeedLike = None,
) -> MacReport:
    """Run CSMA/CA with the background flows as offered load.

    Each link of each background path offers ``demand / link_rate`` airtime
    (the λ of the paper's scenarios).  The report's ``node_idleness`` is
    the *measured* counterpart of
    :func:`repro.estimation.node_idleness_from_schedule`.
    """
    offered: Dict[str, float] = {}
    for path, demand in background:
        for link in path:
            rate = model.max_standalone_rate(link)
            if rate is None:
                raise SimulationError(f"link {link.link_id!r} unusable")
            offered[link.link_id] = (
                offered.get(link.link_id, 0.0) + demand / rate.mbps
            )
    for link_id, share in offered.items():
        if share > 1.0:
            raise SimulationError(
                f"offered load on {link_id!r} exceeds the channel: {share:.2f}"
            )
    simulator = CsmaSimulator(
        network, model, offered, config=config, seed=seed
    )
    return simulator.run()
