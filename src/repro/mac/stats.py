"""Result objects of the CSMA/CA simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["LinkStats", "MacReport"]


@dataclass
class LinkStats:
    """Per-link counters over the measured (post-warmup) horizon."""

    link_id: str
    rate_mbps: float
    attempts: int = 0
    successes: int = 0
    collisions: int = 0
    drops: int = 0
    #: Slots spent transmitting (successful or not).
    tx_slots: int = 0
    #: Slots of successful transmissions only.
    good_slots: int = 0

    @property
    def delivered_share(self) -> float:
        """Fraction of measured time spent in successful transmission."""
        return self.good_slots / max(1, self._measured_slots)

    @property
    def delivered_mbps(self) -> float:
        """Throughput actually delivered: successful airtime × rate."""
        return self.delivered_share * self.rate_mbps

    @property
    def collision_ratio(self) -> float:
        return self.collisions / max(1, self.attempts)

    # Set by the simulator when the run finishes.
    _measured_slots: int = 1


@dataclass
class MacReport:
    """Outcome of one CSMA/CA run."""

    measured_slots: int
    #: λ_idle per node: fraction of measured slots the node sensed the
    #: channel idle (own activity counts as busy) — the quantity Section 4
    #: builds every estimator on.
    node_idleness: Dict[str, float]
    per_link: Dict[str, LinkStats]

    def delivered_mbps(self, link_id: str) -> float:
        return self.per_link[link_id].delivered_mbps

    def summary_lines(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"MacReport over {self.measured_slots} slots"]
        for link_id in sorted(self.per_link):
            stats = self.per_link[link_id]
            lines.append(
                f"  {link_id}: {stats.delivered_mbps:6.2f} Mbps delivered, "
                f"{stats.collision_ratio:5.1%} collisions, "
                f"{stats.drops} drops"
            )
        return "\n".join(lines)
