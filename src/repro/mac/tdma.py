"""Frame-driven multihop flow simulator.

Closes the loop on the model's claims: take the optimal fractional
schedule (Eq. 6), quantise it into an integer TDMA frame
(:func:`repro.core.frame.realize_frame`), and actually push traffic
through it — per-flow queues at every hop, per-slot link capacities,
proportional sharing when flows contend for one link.  If the model is
right, each flow's delivered throughput converges to its demand and
queues stay bounded; if a demand vector is infeasible, the bottleneck
queue grows without bound.  The tests assert exactly that.

Units: rates are Mbps and one slot is one time unit, so a link active at
rate ``r`` moves up to ``r`` megabits per slot and a flow with demand
``d`` Mbps injects ``d`` megabits per slot at its source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.frame import TdmaFrame
from repro.errors import SimulationError
from repro.net.path import Path

__all__ = ["FlowStats", "TdmaFlowReport", "simulate_frame_flows"]


@dataclass
class FlowStats:
    """Per-flow outcome of a frame-driven run."""

    flow_index: int
    offered_mbps: float
    delivered_megabits: float = 0.0
    measured_slots: int = 0
    #: Peak total backlog (megabits summed over the flow's queues).
    peak_backlog: float = 0.0
    #: Backlog at the end of the run.
    final_backlog: float = 0.0

    @property
    def delivered_mbps(self) -> float:
        return self.delivered_megabits / max(1, self.measured_slots)

    @property
    def delivery_ratio(self) -> float:
        if self.offered_mbps == 0.0:
            return 1.0
        return self.delivered_mbps / self.offered_mbps


@dataclass
class TdmaFlowReport:
    """Outcome of :func:`simulate_frame_flows`."""

    per_flow: List[FlowStats]
    frames_run: int
    frame_slots: int

    def delivered_mbps(self, flow_index: int) -> float:
        return self.per_flow[flow_index].delivered_mbps

    def all_delivered(self, tolerance: float = 0.05) -> bool:
        """Whether every flow delivered its demand within ``tolerance``
        (relative)."""
        return all(
            stats.delivery_ratio >= 1.0 - tolerance for stats in self.per_flow
        )


def simulate_frame_flows(
    frame: TdmaFrame,
    flows: Sequence[Tuple[Path, float]],
    frames_to_run: int = 200,
    warmup_frames: int = 20,
) -> TdmaFlowReport:
    """Push the flows through the frame and measure delivery.

    Args:
        frame: The integer TDMA frame (repeats cyclically).
        flows: (path, demand in Mbps) pairs.
        frames_to_run: Total frames simulated.
        warmup_frames: Frames excluded from delivery statistics (queues
            fill pipeline stages during warmup).
    """
    if frames_to_run <= warmup_frames:
        raise SimulationError("frames_to_run must exceed warmup_frames")
    for path, demand in flows:
        if demand < 0:
            raise SimulationError("flow demand must be non-negative")

    # Per flow: queue[i] is the backlog waiting at hop i (before link i).
    queues: List[List[float]] = [
        [0.0] * path.hop_count for path, _demand in flows
    ]
    stats = [
        FlowStats(flow_index=index, offered_mbps=demand)
        for index, (_path, demand) in enumerate(flows)
    ]
    # Which flows use a given link, and at which hop index.
    users: Dict[str, List[Tuple[int, int]]] = {}
    for flow_index, (path, _demand) in enumerate(flows):
        for hop_index, link in enumerate(path):
            users.setdefault(link.link_id, []).append((flow_index, hop_index))

    total_slots = frames_to_run * frame.frame_slots
    warmup_slots = warmup_frames * frame.frame_slots
    for slot_index in range(total_slots):
        measuring = slot_index >= warmup_slots
        # 1. Sources inject.
        for flow_index, (_path, demand) in enumerate(flows):
            queues[flow_index][0] += demand

        # 2. Active links forward, sharing capacity max-min among the
        #    backlogged flows on the link.
        active = frame.slots[slot_index % frame.frame_slots]
        if active is not None:
            for couple in active:
                link = couple.link
                capacity = couple.rate.mbps
                claimants = [
                    (flow_index, hop_index)
                    for flow_index, hop_index in users.get(link.link_id, ())
                    if queues[flow_index][hop_index] > 0.0
                ]
                _share_capacity(
                    capacity, claimants, queues, flows, stats, measuring
                )

        # 3. Backlog accounting.
        for flow_index in range(len(flows)):
            backlog = sum(queues[flow_index])
            if backlog > stats[flow_index].peak_backlog:
                stats[flow_index].peak_backlog = backlog
            if measuring:
                stats[flow_index].measured_slots += 1

    for flow_index in range(len(flows)):
        stats[flow_index].final_backlog = sum(queues[flow_index])
    return TdmaFlowReport(
        per_flow=stats,
        frames_run=frames_to_run,
        frame_slots=frame.frame_slots,
    )


def _share_capacity(
    capacity: float,
    claimants: List[Tuple[int, int]],
    queues: List[List[float]],
    flows: Sequence[Tuple[Path, float]],
    stats: List[FlowStats],
    measuring: bool,
) -> None:
    """Max-min share ``capacity`` among backlogged claimants (water-fill).

    Flows with less backlog than their fair share release the surplus to
    the others; iterate until nothing changes.
    """
    remaining = capacity
    pending = list(claimants)
    while pending and remaining > 1e-12:
        fair = remaining / len(pending)
        satisfied = [
            (f, h) for f, h in pending if queues[f][h] <= fair + 1e-15
        ]
        if not satisfied:
            # Everyone is backlogged beyond the fair share: split evenly.
            for f, h in pending:
                _transfer(f, h, fair, queues, flows, stats, measuring)
            return
        for f, h in satisfied:
            amount = queues[f][h]
            _transfer(f, h, amount, queues, flows, stats, measuring)
            remaining -= amount
        pending = [pair for pair in pending if pair not in satisfied]


def _transfer(
    flow_index: int,
    hop_index: int,
    amount: float,
    queues: List[List[float]],
    flows: Sequence[Tuple[Path, float]],
    stats: List[FlowStats],
    measuring: bool,
) -> None:
    queues[flow_index][hop_index] -= amount
    path, _demand = flows[flow_index]
    if hop_index + 1 < path.hop_count:
        queues[flow_index][hop_index + 1] += amount
    elif measuring:
        stats[flow_index].delivered_megabits += amount
