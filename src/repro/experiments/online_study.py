"""Experiment X6 — online admission head-to-head under churn.

Replays the canonical online churn workload (three well-separated
endpoint pairs, Poisson-ish arrivals, exponential holding, node down/up
episodes — :func:`~repro.workloads.scenarios.online_churn_workload`)
under three controllers:

``online``
    the incremental centralized controller — Eq. 6 per arrival, served
    through warm per-union master LPs and memoised results;
``rebuild``
    the same centralized test, rebuilt cold per event — the paper's
    naive deployment, and the baseline the ≥5× decisions/sec claim is
    measured against;
``twohop``
    the distributed 2-hop-interference estimate
    (:class:`~repro.routing.admission.TwoHopAdmission`) — no global
    state, no LP.

Reported per policy:

admitted load
    ``sum(demand × holding)`` over admitted flows, in Mbit — holding
    times come from the event stream (a flow whose departure fell past
    the stream horizon is charged up to the horizon);
load ratio
    admitted load relative to the centralized optimum-per-event policy
    (``online`` ≡ ``rebuild`` by byte-identity, so their ratio is 1 by
    construction — the interesting number is ``twohop``'s);
regret
    ``max(0, 1 − admitted_load / offline_load)``.  The offline batch
    reference is the fluid full-knowledge clearing: between consecutive
    events the offered (routable) active set is fixed, and the
    reference carries ``min(θ, 1)`` of every active demand where θ is
    that epoch's joint feasibility from
    :func:`~repro.core.bandwidth.joint_admission_scale` — it re-clears
    every epoch and admits fractions, which whole-flow online policies
    cannot, hence "regret" (clamped at zero: θ-proportional clearing
    is a fairness rule, not a max-load bound, so a lucky integral
    policy can beat it);
decisions/sec, p99 latency
    the serving-cost axis, from the same wall clock and histograms the
    bench harness and the churn-smoke SLO gate use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.bandwidth import joint_admission_scale
from repro.experiments.report import format_table
from repro.obs import get_recorder
from repro.serve.io import summarize_online_decisions
from repro.serve.online import (
    OnlineAdmissionController,
    OnlineDecision,
    run_online_session,
)
from repro.workloads.churn import FlowEvent
from repro.workloads.scenarios import OnlineWorkload, online_churn_workload

__all__ = ["OnlinePolicyOutcome", "OnlineStudyResult", "run_online_study"]

#: Replayed policies, centralized-incremental first (the ratio anchor).
DEFAULT_POLICIES = ("online", "rebuild", "twohop")


@dataclass
class OnlinePolicyOutcome:
    """One policy's replay of the shared event stream."""

    policy: str
    decisions: List[OnlineDecision]
    wall_seconds: float
    #: ``sum(demand × holding)`` over admitted flows, Mbit.
    admitted_load: float
    summary: Dict[str, object]

    @property
    def admitted(self) -> int:
        return sum(1 for d in self.decisions if d.admitted)

    @property
    def decisions_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.decisions) / self.wall_seconds


@dataclass
class OnlineStudyResult:
    """X6 outcome: per-policy outcomes plus the shared references."""

    outcomes: Dict[str, OnlinePolicyOutcome]
    #: Offline batch reference load (per-epoch θ-scaled clearing), Mbit.
    offline_load: float
    #: Time-weighted mean of ``min(θ, 1)`` over the stream's epochs —
    #: 1.0 means the offered load was always jointly feasible.
    offline_share: float

    def load_ratio(self, policy: str) -> float:
        """Admitted load vs the centralized per-event optimum."""
        reference = self.outcomes.get("online") or next(
            iter(self.outcomes.values())
        )
        if reference.admitted_load == 0.0:
            return math.nan
        return self.outcomes[policy].admitted_load / reference.admitted_load

    def regret(self, policy: str) -> float:
        """``max(0, 1 − admitted_load / offline_load)``."""
        if self.offline_load == 0.0:
            return 0.0
        return max(
            0.0,
            1.0 - self.outcomes[policy].admitted_load / self.offline_load,
        )

    @property
    def speedup(self) -> float:
        """Online decisions/sec over the rebuild-per-event baseline."""
        online = self.outcomes.get("online")
        rebuild = self.outcomes.get("rebuild")
        if (
            online is None
            or rebuild is None
            or rebuild.decisions_per_second <= 0
        ):
            return math.nan
        return online.decisions_per_second / rebuild.decisions_per_second

    def table(self) -> str:
        rows: List[List[object]] = []
        for policy, outcome in self.outcomes.items():
            rows.append(
                [
                    policy,
                    len(outcome.decisions),
                    outcome.admitted,
                    outcome.admitted_load,
                    self.load_ratio(policy),
                    self.regret(policy),
                    outcome.decisions_per_second,
                    outcome.summary["p99_latency_seconds"],
                ]
            )
        return format_table(
            headers=[
                "policy",
                "decisions",
                "admitted",
                "load [Mbit]",
                "load ratio",
                "regret",
                "dec/s",
                "p99 [s]",
            ],
            rows=rows,
            title=(
                "X6: online admission under churn "
                f"(offline share={self.offline_share:.3f}, "
                f"offline load={self.offline_load:.1f} Mbit, "
                f"online speedup {self.speedup:.1f}x vs rebuild)"
            ),
        )


def _holding_times(events: Sequence[FlowEvent]) -> Dict[str, float]:
    """flow id → holding seconds, clipped to the stream horizon.

    A truncated stream can lose a flow's departure; such flows are
    charged up to the horizon (the last event's time) — the same
    exposure every policy sees, so ratios stay fair.
    """
    horizon = max((event.time for event in events), default=0.0)
    arrivals: Dict[str, float] = {}
    holdings: Dict[str, float] = {}
    for event in events:
        if event.kind == "arrival":
            arrivals[event.flow_id] = event.time
            holdings[event.flow_id] = max(0.0, horizon - event.time)
        elif event.kind == "departure" and event.flow_id in arrivals:
            holdings[event.flow_id] = event.time - arrivals[event.flow_id]
    return holdings


def _admitted_load(
    decisions: Sequence[OnlineDecision], holdings: Dict[str, float]
) -> float:
    return sum(
        decision.demand_mbps * holdings.get(decision.flow_id, 0.0)
        for decision in decisions
        if decision.admitted
    )


def _offline_reference(
    workload: OnlineWorkload,
    decisions: Sequence[OnlineDecision],
    holdings: Dict[str, float],
) -> Tuple[float, float]:
    """(offline load, mean share): fluid full-knowledge batch clearing.

    The offered set is every *routable* arrival (the routing layer is
    shared by all policies, so unroutable flows are out of every
    feasible region).  The stream is cut into epochs at flow
    arrival/departure instants; within an epoch the active offered set
    is constant and the reference carries ``min(θ, 1)`` of each active
    demand, θ being the epoch's joint feasibility from
    :func:`~repro.core.bandwidth.joint_admission_scale`.  θ is memoised
    per active *set* — churn revisits the same configurations
    constantly, the same fact the online controller's caches exploit.
    """
    from repro.serve.io import path_from_nodes

    routed = [d for d in decisions if d.routed]
    if not routed:
        return 0.0, 1.0
    flows = {
        d.flow_id: (
            path_from_nodes(workload.network, list(d.path_nodes)),
            d.demand_mbps,
        )
        for d in routed
    }
    intervals = [
        (d.flow_id, d.time, d.time + holdings.get(d.flow_id, 0.0))
        for d in routed
    ]
    cuts = sorted({t for _fid, start, stop in intervals for t in (start, stop)})
    theta_memo: Dict[frozenset, float] = {}
    load = 0.0
    share_time = 0.0
    total_time = 0.0
    for start, stop in zip(cuts, cuts[1:]):
        span = stop - start
        if span <= 0:
            continue
        active = [
            flow_id
            for flow_id, flow_start, flow_stop in intervals
            if flow_start <= start < flow_stop
        ]
        if not active:
            continue
        key = frozenset(active)
        theta = theta_memo.get(key)
        if theta is None:
            theta, _schedule = joint_admission_scale(
                workload.model, [flows[flow_id] for flow_id in active]
            )
            theta_memo[key] = theta
        share = min(theta, 1.0)
        load += span * share * sum(
            flows[flow_id][1] for flow_id in active
        )
        share_time += span * share
        total_time += span
    mean_share = share_time / total_time if total_time > 0 else 1.0
    return load, mean_share


def run_online_study(
    policies: Sequence[str] = DEFAULT_POLICIES,
    topology_seed: int = 8,
    stream_seed: int = 17,
    n_events: int = 500,
) -> OnlineStudyResult:
    """X6: replay one churn stream under every online admission policy."""
    recorder = get_recorder()
    workload = online_churn_workload(
        topology_seed=topology_seed,
        stream_seed=stream_seed,
        n_events=n_events,
    )
    holdings = _holding_times(workload.events)
    outcomes: Dict[str, OnlinePolicyOutcome] = {}
    for policy in policies:
        if policy == "online":
            controller = OnlineAdmissionController(workload.model)
        elif policy == "rebuild":
            controller = OnlineAdmissionController(
                workload.model, incremental=False
            )
        elif policy == "twohop":
            controller = OnlineAdmissionController(
                workload.model, policy="twohop"
            )
        else:
            raise ValueError(f"unknown X6 policy {policy!r}")
        with recorder.span(f"x6.{policy}"):
            decisions, wall = run_online_session(controller, workload.events)
        outcomes[policy] = OnlinePolicyOutcome(
            policy=policy,
            decisions=decisions,
            wall_seconds=wall,
            admitted_load=_admitted_load(decisions, holdings),
            summary=summarize_online_decisions(decisions, wall),
        )
    anchor = outcomes.get("online") or next(iter(outcomes.values()))
    offline_load, offline_share = _offline_reference(
        workload, anchor.decisions, holdings
    )
    return OnlineStudyResult(
        outcomes=outcomes,
        offline_load=offline_load,
        offline_share=offline_share,
    )
