"""Structured per-item failure records for fault-isolated sweeps.

A long sweep (seeds, routing metrics) should not lose hours of work to one
bad item: :func:`repro.experiments.parallel.fault_tolerant_map` catches
per-item exceptions (and re-executes items stranded by a crashed worker
process) and records an :class:`ItemFailure` for each one instead of
aborting.  The records flow to whichever collector is active — the CLI
opens one around every ``repro run`` experiment (:func:`collect_failures`)
and renders the report after the tables; ``--trace-json`` embeds the same
records machine-readably.

The collector mirrors the :mod:`repro.obs` recorder pattern: sweep code
never holds a collector, it calls :func:`record_failure` and the current
context decides whether anyone is listening.  With no collector active a
failure is re-raised instead of swallowed, so library callers that do not
opt in to fault isolation keep exact pre-existing semantics.
"""

from __future__ import annotations

import traceback as _traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.experiments.report import format_table
from repro.obs import get_recorder

__all__ = [
    "ItemFailure",
    "collect_failures",
    "record_failure",
    "failures_active",
    "tag_experiment",
    "format_failures",
]


@dataclass
class ItemFailure:
    """One failed sweep item: what failed, where, and why.

    ``item_key`` identifies the unit of work (a routing-metric name, a
    ``seed-<n>`` label); ``seed`` carries the item's reproduction seed when
    the sweep knows one.  ``error_type``/``message``/``traceback`` preserve
    the exception, and ``experiment_id`` is stamped by the experiment
    runner so multi-experiment runs stay attributable.
    """

    item_key: str
    error_type: str
    message: str
    traceback: str = ""
    experiment_id: Optional[str] = None
    seed: Optional[int] = None
    #: Structured extras (e.g. solver attempt records) for JSON reports.
    context: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_exception(
        cls,
        item_key: str,
        error: BaseException,
        seed: Optional[int] = None,
        with_traceback: bool = True,
    ) -> "ItemFailure":
        """Build a failure record from a caught exception."""
        trace = ""
        if with_traceback and error.__traceback__ is not None:
            trace = "".join(
                _traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            )
        context: Dict[str, Any] = {}
        attempts = getattr(error, "attempts", None)
        if attempts:
            context["solver_attempts"] = [a.to_dict() for a in attempts]
        return cls(
            item_key=item_key,
            error_type=type(error).__name__,
            message=str(error),
            traceback=trace,
            seed=seed,
            context=context,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, embedded in ``--trace-json`` documents."""
        return {
            "experiment_id": self.experiment_id,
            "item_key": self.item_key,
            "error_type": self.error_type,
            "message": self.message,
            "seed": self.seed,
            "traceback": self.traceback,
            "context": self.context,
        }


#: Stack of active collectors; failures are appended to the innermost one.
_collectors: List[List[ItemFailure]] = []
#: Stack of experiment ids stamped onto newly recorded failures.
_experiment_tags: List[str] = []


@contextmanager
def collect_failures() -> Iterator[List[ItemFailure]]:
    """Collect :class:`ItemFailure` records for the ``with`` block.

    While a collector is active, fault-isolated sweeps degrade gracefully:
    a failed item is recorded here and the sweep continues.  Without one,
    :func:`record_failure` raises, preserving fail-fast library behaviour.
    """
    failures: List[ItemFailure] = []
    _collectors.append(failures)
    try:
        yield failures
    finally:
        _collectors.pop()


def failures_active() -> bool:
    """Whether a failure collector is currently listening."""
    return bool(_collectors)


@contextmanager
def tag_experiment(experiment_id: str) -> Iterator[None]:
    """Stamp ``experiment_id`` onto failures recorded in the block."""
    _experiment_tags.append(experiment_id)
    try:
        yield
    finally:
        _experiment_tags.pop()


def record_failure(
    failure: ItemFailure, error: Optional[BaseException] = None
) -> None:
    """Record ``failure`` with the active collector.

    With no collector active, re-raises ``error`` when given (the caller
    caught it purely to build the record) or raises a ``RuntimeError`` —
    failures must never vanish silently.
    """
    if not _collectors:
        if error is not None:
            raise error
        raise RuntimeError(
            f"item failure with no active collector: {failure.item_key}: "
            f"{failure.message}"
        )
    if failure.experiment_id is None and _experiment_tags:
        failure.experiment_id = _experiment_tags[-1]
    get_recorder().count("failures.items")
    _collectors[-1].append(failure)


def format_failures(failures: List[ItemFailure]) -> str:
    """Render a failure report table (the CLI prints this after tables)."""
    if not failures:
        return "failures: (none)"
    rows = [
        [
            failure.experiment_id or "-",
            failure.item_key,
            "-" if failure.seed is None else failure.seed,
            failure.error_type,
            failure.message.splitlines()[0] if failure.message else "-",
        ]
        for failure in failures
    ]
    table = format_table(
        headers=["experiment", "item", "seed", "error", "message"],
        rows=rows,
        title=f"FAILURES: {len(failures)} item(s) did not complete",
    )
    return table
