"""Experiment X3 — admission policies under flow churn.

Runs the same churn trace (arrivals, departures, endpoints) under each
admission policy — the exact Eq. 6 test and the five Section 4
estimators — and compares blocking, false accepts/rejects, and overload
admissions (false accepts that push the carried set beyond deliverable).

Expected shape (asserted by the X3 benchmark): the truth policy never
overloads by construction; the over-estimating metrics (clique,
bottleneck) buy lower blocking at the price of overload admissions; the
conservative clique constraint stays close to the truth on both counts —
the operational restatement of the paper's Fig. 4 conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.report import format_table
from repro.interference.protocol import ProtocolInterferenceModel
from repro.workloads.churn import ChurnConfig, ChurnOutcome, simulate_churn
from repro.workloads.scenarios import paper_random_topology

__all__ = ["ChurnStudyResult", "run_churn_study", "DEFAULT_POLICIES"]

DEFAULT_POLICIES = (
    "truth",
    "conservative",
    "expected-ctt",
    "min-clique-bottleneck",
    "bottleneck",
    "clique",
)


@dataclass
class ChurnStudyResult:
    outcomes: Dict[str, ChurnOutcome]

    def table(self) -> str:
        rows: List[List[object]] = []
        for policy, outcome in self.outcomes.items():
            rows.append(
                [
                    policy,
                    outcome.arrivals,
                    outcome.admitted,
                    outcome.blocking_ratio,
                    outcome.false_accepts,
                    outcome.false_rejects,
                    outcome.overload_admissions,
                ]
            )
        return format_table(
            headers=[
                "policy",
                "arrivals",
                "admitted",
                "blocking",
                "false accepts",
                "false rejects",
                "overloads",
            ],
            rows=rows,
            title="X3: admission policies under flow churn (paired traces)",
        )


def run_churn_study(
    policies: Sequence[str] = DEFAULT_POLICIES,
    config: ChurnConfig = ChurnConfig(),
    topology_seed: int = 8,
    churn_seed: int = 17,
) -> ChurnStudyResult:
    """X3: run the same churn trace under every admission policy."""
    network = paper_random_topology(seed=topology_seed)
    model = ProtocolInterferenceModel(network)
    outcomes: Dict[str, ChurnOutcome] = {}
    for policy in policies:
        outcomes[policy] = simulate_churn(
            network, model, policy, config=config, seed=churn_seed
        )
    return ChurnStudyResult(outcomes=outcomes)
