"""Extension experiments (X1, X2) beyond the paper's figures.

* **X1 — admission accuracy**: the paper compares estimators by how close
  they track the truth (Fig. 4); the operational question is whether the
  *decisions* they imply are right.  X1 replays the sequential admission
  trace and scores each estimator as an admission controller: accept when
  estimate ≥ demand, against the Eq. 6 ground truth — counting false
  accepts (admitting an unsupportable flow) and false rejects (turning
  away a supportable one).
* **X2 — joint routing gain**: Section 4 poses the joint
  routing/scheduling problem and retreats to distributed metrics; X2
  quantifies what the centralised best-of-candidates approximation
  (:func:`repro.routing.joint.joint_widest_route`) buys over each single
  metric on the Fig. 3 workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.column_generation import min_airtime_column_generation
from repro.errors import RoutingError
from repro.estimation.estimators import ESTIMATORS
from repro.estimation.idle_time import node_idleness_from_schedule, path_state_for
from repro.experiments.fig3_routing import Fig3Config, run_fig3
from repro.experiments.report import format_table
from repro.interference.protocol import ProtocolInterferenceModel
from repro.net.path import Path
from repro.routing.joint import joint_widest_route
from repro.routing.metrics import METRICS, RoutingContext
from repro.routing.shortest_path import route

__all__ = [
    "AdmissionAccuracyResult",
    "run_admission_accuracy",
    "JointRoutingResult",
    "run_joint_routing",
    "JointAdmissionResult",
    "run_joint_admission",
]


@dataclass
class AdmissionAccuracyResult:
    """X1: per-estimator decision quality over the admission trace."""

    #: estimator -> (correct, false accepts, false rejects).
    decisions: Dict[str, Tuple[int, int, int]]
    trials: int

    def table(self) -> str:
        rows = []
        for name, (correct, false_accept, false_reject) in self.decisions.items():
            rows.append(
                [
                    name,
                    correct,
                    false_accept,
                    false_reject,
                    correct / max(1, self.trials),
                ]
            )
        return format_table(
            headers=[
                "estimator",
                "correct",
                "false accepts",
                "false rejects",
                "accuracy",
            ],
            rows=rows,
            title=(
                "X1: estimators as admission controllers "
                f"({self.trials} decisions, truth = Eq. 6)"
            ),
        )


def run_admission_accuracy(
    config: Fig3Config = Fig3Config(),
) -> AdmissionAccuracyResult:
    """Score every estimator's accept/reject decisions on the Fig. 3 trace."""
    fig3 = run_fig3(config)
    network = fig3.network
    model = ProtocolInterferenceModel(network)
    report = fig3.reports["average-e2eD"]

    decisions: Dict[str, List[bool]] = {name: [] for name in ESTIMATORS}
    false_accepts: Dict[str, int] = {name: 0 for name in ESTIMATORS}
    false_rejects: Dict[str, int] = {name: 0 for name in ESTIMATORS}
    background: List[Tuple[Path, float]] = []
    trials = 0
    for outcome in report.outcomes:
        if outcome.path is None:
            continue
        demand = outcome.flow.demand_mbps
        if background:
            schedule = min_airtime_column_generation(model, background)
            idleness = node_idleness_from_schedule(network, schedule, model)
        else:
            idleness = {node.node_id: 1.0 for node in network.nodes}
        state = path_state_for(model, outcome.path, idleness)
        truth_accepts = outcome.available_bandwidth + 1e-6 >= demand
        trials += 1
        for name, estimator in ESTIMATORS.items():
            estimator_accepts = estimator.estimate(state) >= demand
            if estimator_accepts == truth_accepts:
                decisions[name].append(True)
            elif estimator_accepts:
                false_accepts[name] += 1
            else:
                false_rejects[name] += 1
        if outcome.admitted:
            background.append((outcome.path, demand))
    return AdmissionAccuracyResult(
        decisions={
            name: (
                len(decisions[name]),
                false_accepts[name],
                false_rejects[name],
            )
            for name in ESTIMATORS
        },
        trials=trials,
    )


@dataclass
class JointRoutingResult:
    """X2: joint (best-of-candidates) routing vs single metrics."""

    #: (flow id, per-metric bandwidth incl. 'joint').
    rows: List[Tuple[str, Dict[str, float]]]
    candidate_counts: List[int]

    def table(self) -> str:
        names = ["hop-count", "e2eTD", "average-e2eD", "joint"]
        rendered = []
        for flow_id, values in self.rows:
            rendered.append(
                [flow_id] + [values.get(name, float("nan")) for name in names]
            )
        return format_table(
            headers=["flow"] + names,
            rows=rendered,
            title=(
                "X2: available bandwidth (Mbps) of the chosen path — "
                "single metrics vs joint best-of-candidates"
            ),
        )

    def joint_never_worse(self) -> bool:
        for _flow, values in self.rows:
            best_single = max(
                value
                for name, value in values.items()
                if name != "joint"
            )
            if values["joint"] + 1e-6 < best_single:
                return False
        return True


@dataclass
class JointAdmissionResult:
    """X4: sequential admission with joint (best-of-candidates) routing."""

    #: metric name (or 'joint') -> admitted count.
    admitted: Dict[str, int]
    #: metric name -> bandwidth series.
    series: Dict[str, List[float]]

    def table(self) -> str:
        names = list(self.admitted)
        n_rows = max(len(s) for s in self.series.values())
        rows: List[List[object]] = []
        for index in range(n_rows):
            row: List[object] = [index + 1]
            for name in names:
                values = self.series[name]
                row.append(
                    values[index] if index < len(values) else float("nan")
                )
            rows.append(row)
        rows.append(["admitted"] + [self.admitted[name] for name in names])
        return format_table(
            headers=["flow"] + names,
            rows=rows,
            title=(
                "X4: sequential admission — joint routing vs the best "
                "single metric"
            ),
        )


def run_joint_admission(
    config: Fig3Config = Fig3Config(),
    k: int = 3,
) -> JointAdmissionResult:
    """X4: replay Fig. 3's arrivals with joint candidate routing.

    Every arriving flow is routed by
    :func:`~repro.routing.joint_widest_route` (Yen candidates under all
    three metrics, each scored by the exact Eq. 6 LP against the current
    background) instead of one fixed metric.  Because each arrival picks
    the *widest* candidate, the admitted count can only match or beat the
    best single metric on the same trace — quantifying what Section 4's
    joint design is worth operationally.
    """
    from repro.routing.admission import run_sequential_admission
    from repro.workloads.flows import random_flow_endpoints
    from repro.workloads.scenarios import paper_random_topology

    network = paper_random_topology(seed=config.topology_seed)
    model = ProtocolInterferenceModel(network)
    flows = random_flow_endpoints(
        network,
        config.n_flows,
        demand_mbps=config.demand_mbps,
        seed=config.flow_seed,
        min_distance_m=config.min_distance_m,
    )
    admitted: Dict[str, int] = {}
    series: Dict[str, List[float]] = {}
    for name in config.metrics:
        report = run_sequential_admission(
            network, model, flows, METRICS[name],
            use_column_generation=True,
        )
        admitted[name] = report.admitted_count
        series[name] = report.bandwidth_series()

    def joint_router(flow, context, background):
        result = joint_widest_route(
            network,
            model,
            flow.source,
            flow.destination,
            background,
            k=k,
            context=context,
        )
        return result.best_path

    joint_report = run_sequential_admission(
        network,
        model,
        flows,
        METRICS["average-e2eD"],  # unused for routing; kept for reporting
        use_column_generation=True,
        router=joint_router,
    )
    admitted["joint"] = joint_report.admitted_count
    series["joint"] = joint_report.bandwidth_series()
    return JointAdmissionResult(admitted=admitted, series=series)


def run_joint_routing(
    config: Fig3Config = Fig3Config(),
    k: int = 3,
) -> JointRoutingResult:
    """Compare joint routing against single metrics, flow by flow.

    Uses the Fig. 3 arrival sequence with the average-e2eD admission trace
    as background (so every comparison sees the same load).
    """
    fig3 = run_fig3(config)
    network = fig3.network
    model = ProtocolInterferenceModel(network)
    report = fig3.reports["average-e2eD"]

    rows: List[Tuple[str, Dict[str, float]]] = []
    candidate_counts: List[int] = []
    background: List[Tuple[Path, float]] = []
    for outcome in report.outcomes:
        if outcome.path is None:
            continue
        flow = outcome.flow
        if background:
            schedule = min_airtime_column_generation(model, background)
            idleness = node_idleness_from_schedule(network, schedule, model)
        else:
            idleness = None
        context = RoutingContext(model=model, node_idleness=idleness)
        values: Dict[str, float] = {}
        for name, metric in METRICS.items():
            try:
                path = route(
                    network, flow.source, flow.destination, metric, context
                )
            except RoutingError:
                values[name] = float("nan")
                continue
            from repro.core.column_generation import solve_with_column_generation

            values[name] = solve_with_column_generation(
                model, path, background
            ).result.available_bandwidth
        joint = joint_widest_route(
            network,
            model,
            flow.source,
            flow.destination,
            background,
            k=k,
            context=context,
        )
        values["joint"] = joint.best_bandwidth
        candidate_counts.append(joint.candidate_count)
        rows.append((flow.flow_id, values))
        if outcome.admitted:
            background.append((outcome.path, flow.demand_mbps))
    return JointRoutingResult(rows=rows, candidate_counts=candidate_counts)
