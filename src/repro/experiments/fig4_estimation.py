"""Experiment E5 — Fig. 4: estimated vs true path available bandwidth.

For the paths found by the average-e2eD routing metric (the Fig. 3 run),
compare the five Section 4 estimators against the Eq. 6 truth, each
evaluated at the flow's arrival instant (with the background that existed
then, optimally scheduled).

Paper shape, asserted by the E5 benchmark:

* "clique constraint" ignores background → over-estimates under heavy
  load (late flows), and ignores link adaptation → under-estimates under
  light load (early flows);
* "bottleneck node bandwidth" ignores the new path's self-interference →
  over-estimates, most under light load;
* "conservative clique constraint" tracks the truth best (smallest mean
  absolute error);
* "expected clique transmission time" is slightly more pessimistic than
  the conservative clique constraint;
* under heavy load every idle-time metric except "clique constraint"
  under-estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.column_generation import min_airtime_column_generation
from repro.errors import ConfigurationError
from repro.estimation.estimators import ESTIMATORS
from repro.estimation.idle_time import node_idleness_from_schedule, path_state_for
from repro.experiments.fig3_routing import Fig3Config, run_fig3
from repro.experiments.report import format_table
from repro.interference.protocol import ProtocolInterferenceModel
from repro.mac.config import CsmaConfig
from repro.mac.simulator import simulate_background
from repro.net.path import Path

__all__ = ["Fig4Row", "Fig4Result", "run_fig4"]

#: Estimator presentation order — the paper's legend order.
ESTIMATOR_ORDER = (
    "clique",
    "bottleneck",
    "min-clique-bottleneck",
    "conservative",
    "expected-ctt",
)


@dataclass(frozen=True)
class Fig4Row:
    flow_id: str
    path: Path
    truth: float
    estimates: Dict[str, float]


@dataclass
class Fig4Result:
    rows: List[Fig4Row]

    def mean_absolute_error(self) -> Dict[str, float]:
        errors: Dict[str, float] = {}
        for name in ESTIMATOR_ORDER:
            errors[name] = sum(
                abs(row.estimates[name] - row.truth) for row in self.rows
            ) / max(1, len(self.rows))
        return errors

    def table(self) -> str:
        rows: List[List[object]] = []
        for index, row in enumerate(self.rows, start=1):
            rows.append(
                [index, row.truth]
                + [row.estimates[name] for name in ESTIMATOR_ORDER]
            )
        mae = self.mean_absolute_error()
        rows.append(["MAE", float("nan")] + [mae[n] for n in ESTIMATOR_ORDER])
        return format_table(
            headers=["flow", "truth (Eq.6)"] + list(ESTIMATOR_ORDER),
            rows=rows,
            title=(
                "E5 / Fig. 4: estimated available bandwidth (Mbps) on the "
                "average-e2eD paths"
            ),
        )


def run_fig4(
    config: Fig3Config = Fig3Config(),
    idleness_source: str = "csma",
    csma_seed: int = 2,
    workers: Optional[int] = None,
) -> Fig4Result:
    """Run the Fig. 4 comparison.

    Args:
        config: Topology/flow parameters (shared with Fig. 3).
        idleness_source: Where the estimators' λ_idle comes from —
            ``"csma"`` measures it with the CSMA/CA simulator (what a real
            deployment would sense; reproduces the paper's ordering,
            conservative best and expected-ctt slightly worse) or
            ``"optimal"`` derives it from the minimum-airtime schedule
            (the theoretical-best background packing).
        csma_seed: MAC randomness for the ``"csma"`` source.
        workers: Passed through to the underlying Fig. 3 run (the
            estimator sweep itself is sequential — each flow's state
            depends on the previous admissions).
    """
    if idleness_source not in ("csma", "optimal"):
        raise ConfigurationError(
            f"idleness_source must be 'csma' or 'optimal', got "
            f"{idleness_source!r}"
        )
    fig3 = run_fig3(config, workers=workers)
    network = fig3.network
    model = ProtocolInterferenceModel(network)
    report = fig3.reports["average-e2eD"]
    csma_config = CsmaConfig(sim_slots=40_000, warmup_slots=4_000)

    rows: List[Fig4Row] = []
    background: List[Tuple[Path, float]] = []
    for outcome in report.outcomes:
        if outcome.path is None:
            continue
        if not background:
            idleness = {node.node_id: 1.0 for node in network.nodes}
        elif idleness_source == "optimal":
            schedule = min_airtime_column_generation(model, background)
            idleness = node_idleness_from_schedule(network, schedule, model)
        else:
            mac_report = simulate_background(
                network,
                model,
                background,
                config=csma_config,
                seed=csma_seed,
            )
            idleness = mac_report.node_idleness
        state = path_state_for(model, outcome.path, idleness)
        estimates = {
            name: ESTIMATORS[name].estimate(state)
            for name in ESTIMATOR_ORDER
        }
        rows.append(
            Fig4Row(
                flow_id=outcome.flow.flow_id,
                path=outcome.path,
                truth=outcome.available_bandwidth,
                estimates=estimates,
            )
        )
        if outcome.admitted:
            background.append((outcome.path, outcome.flow.demand_mbps))
    return Fig4Result(rows=rows)
