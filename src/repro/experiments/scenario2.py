"""Experiment E2 — Scenario II, the Section 5.1 worked example.

Reproduces, number by number, the paper's demonstration that clique
constraints break under link adaptation:

* optimal end-to-end throughput **f = 16.2 Mbps** with the schedule
  λ = (0.1, 0.3, 0.3, 0.3);
* the feasible throughput vector (16.2 on every link) *violates* both
  critical cliques: Σ y/R = **1.2** over C1 (all links at 54) and
  **1.05** over C2 ({(L1,36),(L2,54),(L3,54)});
* the fixed-rate clique bounds (Eq. 7) are **13.5** (all-54) and
  **108/7 ≈ 15.43** (L1 at 36) — both below the achievable 16.2;
* the Eq. 8 hypothesis quantity min_i T̂_i exceeds 1;
* the corrected Eq. 9 upper bound and a Section 3.3 lower bound sandwich
  the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.bandwidth import available_path_bandwidth
from repro.core.bounds import (
    clique_upper_bound,
    fixed_rate_equal_throughput_bound,
    hypothesis_min_clique_time,
    lower_bound_from_subset,
)
from repro.core.cliques import RateClique, maximal_cliques_with_maximum_rates
from repro.core.schedule import LinkSchedule
from repro.experiments.report import format_table
from repro.workloads.scenarios import ScenarioTwo, scenario_two

__all__ = ["Scenario2Result", "run_scenario2"]


@dataclass
class Scenario2Result:
    """All the Section 5.1 quantities."""

    optimal_throughput: float
    schedule: LinkSchedule
    #: (clique description, Σ y/R under the optimal demand vector).
    clique_violations: List[Tuple[str, float]]
    #: (rate vector description, Eq. 7 bound).
    fixed_rate_bounds: List[Tuple[str, float]]
    hypothesis_value: float
    eq9_upper_bound: float
    subset_lower_bound: float
    maximal_cliques_max_rates: List[str]

    def table(self) -> str:
        rows = [
            ("optimal end-to-end throughput f (Eq. 6)", self.optimal_throughput, 16.2),
            ("Eq. 8 hypothesis min_i T-hat_i (feasible => claim <= 1)", self.hypothesis_value, 1.05),
            ("Eq. 9 upper bound", self.eq9_upper_bound, float("nan")),
            ("Sec. 3.3 lower bound (greedy 3-column subset)", self.subset_lower_bound, float("nan")),
        ]
        rows.extend(
            (f"clique time of {name} at f*", value, expected)
            for (name, value), expected in zip(
                self.clique_violations, (1.2, 1.05)
            )
        )
        rows.extend(
            (f"Eq. 7 fixed-rate bound, {name}", value, expected)
            for (name, value), expected in zip(
                self.fixed_rate_bounds, (13.5, 108.0 / 7.0)
            )
        )
        return format_table(
            headers=["quantity", "measured", "paper"],
            rows=rows,
            title="E2 / Scenario II (Section 5.1 worked example)",
        )


def run_scenario2() -> Scenario2Result:
    """Reproduce every Section 5.1 quantity (see module docstring)."""
    bundle: ScenarioTwo = scenario_two()
    model, path = bundle.model, bundle.path
    network = bundle.network
    table = network.radio.rate_table

    result = available_path_bandwidth(model, path)
    f_star = result.available_bandwidth
    demands = {link: f_star for link in path}

    # The two cliques the paper analyses.
    rate54 = table.get(54.0)
    rate36 = table.get(36.0)
    links = {index: network.link(f"L{index}") for index in range(1, 5)}
    clique_c1 = RateClique.from_pairs(
        (links[index], rate54) for index in range(1, 5)
    )
    clique_c2 = RateClique.from_pairs(
        [(links[1], rate36), (links[2], rate54), (links[3], rate54)]
    )
    violations = [
        ("C1 = {(L1..L4, 54)}", clique_c1.transmission_time(demands)),
        ("C2 = {(L1,36),(L2,54),(L3,54)}", clique_c2.transmission_time(demands)),
    ]
    fixed_bounds = [
        ("R1 = (54,54,54,54) via C1", fixed_rate_equal_throughput_bound(clique_c1)),
        ("R2 = (36,54,54,54) via C2", fixed_rate_equal_throughput_bound(clique_c2)),
    ]

    hypothesis = hypothesis_min_clique_time(model, list(path.links), demands)
    upper = clique_upper_bound(model, path).upper_bound
    lower = lower_bound_from_subset(
        model, path, subset_size=3
    ).available_bandwidth
    cliques = [
        str(clique)
        for clique in maximal_cliques_with_maximum_rates(
            model, list(path.links)
        )
    ]
    return Scenario2Result(
        optimal_throughput=f_star,
        schedule=result.schedule,
        clique_violations=violations,
        fixed_rate_bounds=fixed_bounds,
        hypothesis_value=hypothesis,
        eq9_upper_bound=upper,
        subset_lower_bound=lower,
        maximal_cliques_max_rates=cliques,
    )
