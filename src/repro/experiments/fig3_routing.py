"""Experiment E4 — Fig. 3: available bandwidth per flow per routing metric.

30 nodes in 400 m × 600 m, eight random flows of 2 Mbps joining one by
one; for each routing metric the series of true (Eq. 6) available
bandwidths of the chosen paths, stopping at the first unsatisfied demand.

Paper shape (its placement): average-e2eD finds the widest paths and only
fails at the 8th flow; e2eTD fails at the 5th; hop count at the 3rd.  The
default seed here reproduces the hop-count and average-e2eD failure points
exactly and e2eTD within one flow (placements differ; see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.parallel import fault_tolerant_map
from repro.interference.protocol import ProtocolInterferenceModel
from repro.net.topology import Network
from repro.routing.admission import AdmissionReport, run_sequential_admission
from repro.routing.metrics import METRICS
from repro.workloads.flows import Flow, random_flow_endpoints
from repro.workloads.scenarios import paper_random_topology

__all__ = ["Fig3Config", "Fig3Result", "run_fig3"]

#: Default placement/flow seeds: chosen (documented in EXPERIMENTS.md) so
#: the failure points match the paper's Fig. 3 as closely as a different
#: random placement can.
DEFAULT_TOPOLOGY_SEED = 8
DEFAULT_FLOW_SEED = 801


@dataclass(frozen=True)
class Fig3Config:
    topology_seed: int = DEFAULT_TOPOLOGY_SEED
    flow_seed: int = DEFAULT_FLOW_SEED
    n_flows: int = 8
    demand_mbps: float = 2.0
    min_distance_m: float = 100.0
    metrics: Sequence[str] = ("hop-count", "e2eTD", "average-e2eD")


@dataclass
class Fig3Result:
    config: Fig3Config
    network: Network
    flows: List[Flow]
    reports: Dict[str, AdmissionReport] = field(default_factory=dict)

    def series(self, metric: str) -> List[float]:
        """The metric's bandwidth series; empty when its run failed."""
        report = self.reports.get(metric)
        return report.bandwidth_series() if report is not None else []

    def first_failure(self, metric: str) -> Optional[int]:
        report = self.reports.get(metric)
        return report.first_failure_index if report is not None else None

    def table(self) -> str:
        names = list(self.config.metrics)
        n = max((len(self.series(name)) for name in names), default=0)
        rows = []
        for index in range(n):
            row: List[object] = [index + 1]
            for name in names:
                values = self.series(name)
                row.append(values[index] if index < len(values) else math.nan)
            rows.append(row)
        failure_row: List[object] = ["fails at"]
        for name in names:
            failure = self.first_failure(name)
            failure_row.append(float("nan") if failure is None else failure)
        rows.append(failure_row)
        return format_table(
            headers=["flow"] + names,
            rows=rows,
            title=(
                "E4 / Fig. 3: available bandwidth (Mbps) of each flow's "
                f"path ({self.config.n_flows} flows x "
                f"{self.config.demand_mbps:g} Mbps)"
            ),
        )


def _build_instance(config: Fig3Config):
    """Deterministic (network, model, flows) for the config's seeds."""
    network = paper_random_topology(seed=config.topology_seed)
    model = ProtocolInterferenceModel(network)
    flows = random_flow_endpoints(
        network,
        config.n_flows,
        demand_mbps=config.demand_mbps,
        seed=config.flow_seed,
        min_distance_m=config.min_distance_m,
    )
    return network, model, flows


def _run_metric(args) -> AdmissionReport:
    """One metric's sequential admission, rebuilt from seeds (picklable)."""
    config, name = args
    network, model, flows = _build_instance(config)
    return run_sequential_admission(
        network,
        model,
        flows,
        METRICS[name],
        use_column_generation=True,
    )


def run_fig3(
    config: Fig3Config = Fig3Config(), workers: Optional[int] = None
) -> Fig3Result:
    """Run the Fig. 3 sequential-admission comparison for each metric.

    ``workers > 1`` runs the metrics in parallel processes; each worker
    rebuilds the topology and flows from the config's seeds, so the result
    is identical to the sequential run.

    Sequential and parallel sweeps run the *same* per-item function
    (``_run_metric``, rebuilding the instance from seeds), so not only the
    tables but also the obs counter totals are identical across worker
    counts — and across checkpoint resumes in either mode.  The sequential
    path used to reuse one shared model across metrics, which produced the
    same tables but different ``kernel.*`` counters than a parallel (or
    resumed) run.

    The metric sweep is fault isolated: with a failure collector active
    (the CLI installs one), a metric whose run fails is recorded as an
    :class:`~repro.experiments.failures.ItemFailure` and simply left out
    of ``reports`` — the remaining metrics still render.  With a
    checkpoint store active, completed metrics persist and a resumed run
    skips them.
    """
    network, _, flows = _build_instance(config)
    result = Fig3Result(config=config, network=network, flows=flows)
    names = list(config.metrics)
    seeds = [config.topology_seed] * len(names)
    reports = fault_tolerant_map(
        _run_metric,
        [(config, name) for name in names],
        workers=workers,
        item_keys=names,
        item_seeds=seeds,
    )
    for name, report in zip(names, reports):
        if report is not None:
            result.reports[name] = report
    return result
