"""Experiment registry and dispatch (used by the CLI and benchmarks)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import ConfigurationError

__all__ = ["ExperimentSpec", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, description, zero-argument runner."""

    experiment_id: str
    description: str
    runner: Callable[[], object]

    def run(self) -> object:
        """Execute and return the result object (all have ``.table()``)."""
        return self.runner()


def _registry() -> Dict[str, ExperimentSpec]:
    # Imported lazily so `import repro.experiments.runner` stays cheap and
    # free of circularity with the experiment modules.
    from repro.experiments.ablations import (
        run_ablation_a1,
        run_ablation_a2,
        run_ablation_a3,
        run_ablation_a4,
        run_ablation_a5,
    )
    from repro.experiments.churn_study import run_churn_study
    from repro.experiments.extensions import (
        run_admission_accuracy,
        run_joint_admission,
        run_joint_routing,
    )
    from repro.experiments.fig2_paths import run_fig2
    from repro.experiments.fig3_routing import run_fig3
    from repro.experiments.fig4_estimation import run_fig4
    from repro.experiments.scenario1 import run_scenario1
    from repro.experiments.scenario2 import run_scenario2
    from repro.experiments.seed_study import run_seed_study

    specs = [
        ExperimentSpec(
            "e1",
            "Scenario I: optimal vs idle-time available bandwidth (Fig. 1)",
            run_scenario1,
        ),
        ExperimentSpec(
            "e2",
            "Scenario II: Section 5.1 worked example, clique violations",
            run_scenario2,
        ),
        ExperimentSpec(
            "e3", "Fig. 2: random topology and per-metric paths", run_fig2
        ),
        ExperimentSpec(
            "e4", "Fig. 3: available bandwidth per flow per metric", run_fig3
        ),
        ExperimentSpec(
            "e5", "Fig. 4: estimated vs true available bandwidth", run_fig4
        ),
        ExperimentSpec(
            "a1", "Ablation: link adaptation vs fixed rates", run_ablation_a1
        ),
        ExperimentSpec(
            "a2",
            "Ablation: column generation vs enumeration",
            run_ablation_a2,
        ),
        ExperimentSpec(
            "a3",
            "Ablation: analytic vs CSMA-measured idleness",
            run_ablation_a3,
        ),
        ExperimentSpec(
            "a4",
            "Ablation: propagation-exponent sensitivity of Fig. 3",
            run_ablation_a4,
        ),
        ExperimentSpec(
            "a5",
            "Ablation: pairwise vs cumulative interference models",
            run_ablation_a5,
        ),
        ExperimentSpec(
            "x1",
            "Extension: estimators as admission controllers",
            run_admission_accuracy,
        ),
        ExperimentSpec(
            "x2",
            "Extension: joint routing vs single metrics",
            run_joint_routing,
        ),
        ExperimentSpec(
            "x3",
            "Extension: admission policies under flow churn",
            run_churn_study,
        ),
        ExperimentSpec(
            "x4",
            "Extension: sequential admission with joint routing",
            run_joint_admission,
        ),
        ExperimentSpec(
            "s1",
            "Study: seed-robustness of the Fig. 3 metric ordering",
            run_seed_study,
        ),
    ]
    return {spec.experiment_id: spec for spec in specs}


#: All registered experiments, keyed by id.
EXPERIMENTS: Dict[str, ExperimentSpec] = _registry()


def run_experiment(experiment_id: str) -> object:
    """Run one experiment by id; the result object has a ``.table()``."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r} (known: {known})"
        ) from None
    return spec.run()
