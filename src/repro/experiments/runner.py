"""Experiment registry and dispatch (used by the CLI and benchmarks).

Experiments that sweep independent units of work (seeds, routing metrics)
accept an opt-in ``workers=N`` and fan the sweep out over a
:class:`~concurrent.futures.ProcessPoolExecutor` via :func:`parallel_map`.
Each worker rebuilds its state from the sweep's seeds, and results come
back in submission order, so a parallel run is byte-identical to the
sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.experiments.failures import tag_experiment
from repro.experiments.parallel import parallel_map
from repro.obs import get_recorder

__all__ = ["ExperimentSpec", "EXPERIMENTS", "run_experiment", "parallel_map"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, description, zero-argument runner."""

    experiment_id: str
    description: str
    runner: Callable[..., object]
    #: Whether the runner accepts ``workers=N`` for process parallelism.
    supports_workers: bool = False

    def run(self, workers: Optional[int] = None) -> object:
        """Execute and return the result object (all have ``.table()``).

        Runs under an experiment tag so item failures recorded by
        fault-isolated sweeps carry this experiment's id.
        """
        recorder = get_recorder()
        with recorder.span(f"experiment.{self.experiment_id}"), \
                tag_experiment(self.experiment_id):
            if workers is not None and workers > 1:
                if not self.supports_workers:
                    raise ConfigurationError(
                        f"experiment {self.experiment_id!r} does not "
                        "support parallel workers"
                    )
                result = self.runner(workers=workers)
            else:
                result = self.runner()
        # Completed-experiment tally: history records carry it, so a
        # cross-run diff can tell "the workload shrank" from "the solver
        # got cheaper".
        recorder.count("experiment.runs")
        return result


def _registry() -> Dict[str, ExperimentSpec]:
    # Imported lazily so `import repro.experiments.runner` stays cheap and
    # free of circularity with the experiment modules.
    from repro.experiments.ablations import (
        run_ablation_a1,
        run_ablation_a2,
        run_ablation_a3,
        run_ablation_a4,
        run_ablation_a5,
    )
    from repro.experiments.churn_study import run_churn_study
    from repro.experiments.extensions import (
        run_admission_accuracy,
        run_joint_admission,
        run_joint_routing,
    )
    from repro.experiments.fig2_paths import run_fig2
    from repro.experiments.online_study import run_online_study
    from repro.experiments.fig3_routing import run_fig3
    from repro.experiments.fig4_estimation import run_fig4
    from repro.experiments.scenario1 import run_scenario1
    from repro.experiments.scenario2 import run_scenario2
    from repro.experiments.scale_study import run_scale_study
    from repro.experiments.seed_study import run_seed_study

    specs = [
        ExperimentSpec(
            "e1",
            "Scenario I: optimal vs idle-time available bandwidth (Fig. 1)",
            run_scenario1,
        ),
        ExperimentSpec(
            "e2",
            "Scenario II: Section 5.1 worked example, clique violations",
            run_scenario2,
        ),
        ExperimentSpec(
            "e3",
            "Fig. 2: random topology and per-metric paths",
            run_fig2,
            supports_workers=True,
        ),
        ExperimentSpec(
            "e4",
            "Fig. 3: available bandwidth per flow per metric",
            run_fig3,
            supports_workers=True,
        ),
        ExperimentSpec(
            "e5",
            "Fig. 4: estimated vs true available bandwidth",
            run_fig4,
            supports_workers=True,
        ),
        ExperimentSpec(
            "a1", "Ablation: link adaptation vs fixed rates", run_ablation_a1
        ),
        ExperimentSpec(
            "a2",
            "Ablation: column generation vs enumeration",
            run_ablation_a2,
        ),
        ExperimentSpec(
            "a3",
            "Ablation: analytic vs CSMA-measured idleness",
            run_ablation_a3,
        ),
        ExperimentSpec(
            "a4",
            "Ablation: propagation-exponent sensitivity of Fig. 3",
            run_ablation_a4,
        ),
        ExperimentSpec(
            "a5",
            "Ablation: pairwise vs cumulative interference models",
            run_ablation_a5,
        ),
        ExperimentSpec(
            "x1",
            "Extension: estimators as admission controllers",
            run_admission_accuracy,
        ),
        ExperimentSpec(
            "x2",
            "Extension: joint routing vs single metrics",
            run_joint_routing,
        ),
        ExperimentSpec(
            "x3",
            "Extension: admission policies under flow churn",
            run_churn_study,
        ),
        ExperimentSpec(
            "x4",
            "Extension: sequential admission with joint routing",
            run_joint_admission,
        ),
        ExperimentSpec(
            "x6",
            "Extension: online admission under churn, head-to-head",
            run_online_study,
        ),
        ExperimentSpec(
            "x7",
            "Extension: tiled estimation quality and wall-time scaling",
            run_scale_study,
        ),
        ExperimentSpec(
            "s1",
            "Study: seed-robustness of the Fig. 3 metric ordering",
            run_seed_study,
            supports_workers=True,
        ),
    ]
    return {spec.experiment_id: spec for spec in specs}


#: All registered experiments, keyed by id.
EXPERIMENTS: Dict[str, ExperimentSpec] = _registry()


def run_experiment(
    experiment_id: str, workers: Optional[int] = None
) -> object:
    """Run one experiment by id; the result object has a ``.table()``."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r} (known: {known})"
        ) from None
    return spec.run(workers=workers)
