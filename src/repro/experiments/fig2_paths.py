"""Experiment E3 — Fig. 2: the random topology and the paths metrics pick.

Fig. 2 is a picture: node placement plus the routes found by average-e2eD
(solid) and the hops where e2eTD differs (dotted).  Its data content —
node coordinates and the per-metric path of every admitted flow — is what
this experiment regenerates, as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.fig3_routing import Fig3Config, Fig3Result, run_fig3
from repro.experiments.report import format_table

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """Placement and chosen paths (derived from the Fig. 3 run)."""

    fig3: Fig3Result

    def placement_table(self) -> str:
        rows = [
            (node.node_id, node.x, node.y)
            for node in self.fig3.network.nodes
        ]
        return format_table(
            headers=["node", "x (m)", "y (m)"],
            rows=rows,
            precision=1,
            title="E3 / Fig. 2: node placement (400 m x 600 m)",
        )

    def paths_table(self) -> str:
        metric_names = list(self.fig3.config.metrics)
        rows: List[List[object]] = []
        for index, flow in enumerate(self.fig3.flows):
            row: List[object] = [flow.flow_id, f"{flow.source}->{flow.destination}"]
            for name in metric_names:
                report = self.fig3.reports.get(name)
                outcomes = report.outcomes if report is not None else []
                if index < len(outcomes) and outcomes[index].path is not None:
                    row.append(str(outcomes[index].path))
                else:
                    row.append("-")
            rows.append(row)
        return format_table(
            headers=["flow", "endpoints"] + metric_names,
            rows=rows,
            title="E3 / Fig. 2: per-metric routes (up to each run's stop)",
        )

    def divergent_links(self) -> List[str]:
        """Links used by e2eTD but not average-e2eD (the dotted arrows)."""
        solid: set = set()
        dotted: set = set()
        solid_report = self.fig3.reports.get("average-e2eD")
        dotted_report = self.fig3.reports.get("e2eTD")
        for outcome in solid_report.outcomes if solid_report else []:
            if outcome.path:
                solid.update(link.link_id for link in outcome.path)
        for outcome in dotted_report.outcomes if dotted_report else []:
            if outcome.path:
                dotted.update(link.link_id for link in outcome.path)
        return sorted(dotted - solid)

    def map_view(self, width: int = 60, height: int = 30) -> str:
        """ASCII rendering of the placement with the average-e2eD routes."""
        from repro.experiments.ascii_map import render_topology

        report = self.fig3.reports.get("average-e2eD")
        paths = [
            outcome.path
            for outcome in (report.outcomes if report is not None else [])
            if outcome.path is not None
        ]
        return render_topology(
            self.fig3.network, paths, width=width, height=height
        )

    def table(self) -> str:
        divergent = ", ".join(self.divergent_links()) or "(none)"
        return "\n\n".join(
            [
                self.placement_table(),
                self.paths_table(),
                f"links used by e2eTD but not average-e2eD: {divergent}",
                self.map_view(),
            ]
        )


def run_fig2(
    config: Fig3Config = Fig3Config(), workers: Optional[int] = None
) -> Fig2Result:
    """Regenerate the Fig. 2 placement and per-metric paths."""
    return Fig2Result(fig3=run_fig3(config, workers=workers))
