"""Experiment E1 — Scenario I (Fig. 1 / Section 1 narrative).

Question: how much bandwidth is available on the one-hop path over L3,
given background time share λ on each of L1 and L2 (which do not conflict
with each other, while L3 conflicts with and hears both)?

The paper's point, reproduced here as a λ sweep:

* the optimum (Eq. 6) overlaps L1 and L2 and leaves **1 − λ** for L3;
* channel-idle-time accounting under serialised background admits only
  **1 − 2λ**;
* a real CSMA/CA MAC lands in between (transmissions overlap at random:
  idle share ≈ (1 − λ)²).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.bandwidth import available_path_bandwidth, tdma_schedule
from repro.estimation.estimators import BottleneckNodeBandwidth
from repro.estimation.idle_time import node_idleness_from_schedule, path_state_for
from repro.experiments.report import format_table
from repro.mac.config import CsmaConfig
from repro.mac.simulator import simulate_background
from repro.workloads.scenarios import scenario_one

__all__ = ["Scenario1Row", "Scenario1Result", "run_scenario1"]

#: Default λ sweep; 0.45 stays below the 0.5 limit where even serialised
#: background fills the channel.
DEFAULT_SHARES = (0.1, 0.2, 0.3, 0.4, 0.45)


@dataclass(frozen=True)
class Scenario1Row:
    """One λ point of the sweep (bandwidths as shares of the link rate)."""

    background_share: float
    optimal_share: float
    idle_time_share_serialised: float
    idle_time_share_csma: float


@dataclass
class Scenario1Result:
    rows: List[Scenario1Row]
    rate_mbps: float

    def table(self) -> str:
        return format_table(
            headers=[
                "lambda",
                "optimal (1-l)",
                "idle-time serialised (1-2l)",
                "idle-time CSMA",
            ],
            rows=[
                (
                    row.background_share,
                    row.optimal_share,
                    row.idle_time_share_serialised,
                    row.idle_time_share_csma,
                )
                for row in self.rows
            ],
            title=(
                "E1 / Scenario I: available share of L3 vs background "
                f"share λ (link rate {self.rate_mbps:g} Mbps)"
            ),
        )


def run_scenario1(
    shares: Sequence[float] = DEFAULT_SHARES,
    csma_config: Optional[CsmaConfig] = None,
    seed: int = 1,
    csma_repeats: int = 1,
) -> Scenario1Result:
    """Sweep λ and compare the three answers.

    Args:
        csma_repeats: Number of independent CSMA runs per λ (seeds
            ``seed .. seed + repeats - 1``); the reported CSMA column is
            their mean.  One run is plenty for the shape; several tighten
            the estimate for tables.
    """
    if csma_config is None:
        csma_config = CsmaConfig(sim_slots=100_000, warmup_slots=5_000)
    if csma_repeats < 1:
        raise ValueError("csma_repeats must be at least 1")
    rows: List[Scenario1Row] = []
    rate_mbps = 54.0
    estimator = BottleneckNodeBandwidth()
    for share in shares:
        bundle = scenario_one(background_share=share)
        rate_mbps = bundle.rate_mbps

        optimal = available_path_bandwidth(
            bundle.model, bundle.new_path, bundle.background
        )

        serialised = tdma_schedule(bundle.model, bundle.background)
        idle_serialised = node_idleness_from_schedule(
            bundle.network, serialised, bundle.model
        )
        state = path_state_for(bundle.model, bundle.new_path, idle_serialised)
        estimate_serialised = estimator.estimate(state)

        def measure_csma(run_seed: int) -> float:
            mac_report = simulate_background(
                bundle.network,
                bundle.model,
                bundle.background,
                config=csma_config,
                seed=run_seed,
            )
            state_csma = path_state_for(
                bundle.model, bundle.new_path, mac_report.node_idleness
            )
            return estimator.estimate(state_csma)

        if csma_repeats == 1:
            estimate_csma = measure_csma(seed)
        else:
            from repro.analysis import repeat

            estimate_csma = repeat(
                measure_csma, seeds=range(seed, seed + csma_repeats)
            ).mean

        rows.append(
            Scenario1Row(
                background_share=share,
                optimal_share=optimal.available_bandwidth / rate_mbps,
                idle_time_share_serialised=estimate_serialised / rate_mbps,
                idle_time_share_csma=estimate_csma / rate_mbps,
            )
        )
    return Scenario1Result(rows=rows, rate_mbps=rate_mbps)
