"""Experiment X7 — tiled estimation quality and wall-time scaling.

Two questions about :mod:`repro.scale`'s interference-tile estimator:

* **Quality** — on instances small enough for the exact Eq. 6 solve, how
  tight is the ``[lower, upper]`` bracket?  Every row re-checks
  ``LB ≤ exact ≤ UB`` (the same invariant :mod:`repro.verify` enforces).
* **Scaling** — on uniform random fields of growing size, how does the
  tiled estimate's wall time grow, and where does the exact global
  enumeration stop being affordable?  Exact is attempted only up to
  ``exact_limit`` nodes; beyond it the tiled solver runs alone, which is
  the whole point of the decomposition.

The scatter fields keep node density constant (field edges grow with
``sqrt(n)``), so hop counts and interference degree grow the way a real
deployment's would.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.bandwidth import available_path_bandwidth
from repro.errors import InfeasibleProblemError
from repro.experiments.report import format_table
from repro.interference.protocol import ProtocolInterferenceModel
from repro.net.generators import scatter_topology
from repro.net.path import Path
from repro.net.topology import Network
from repro.obs import get_recorder
from repro.scale.tiles import TileConfig, tiled_path_bandwidth
from repro.verify.instances import iter_instances

__all__ = ["ScaleStudyResult", "run_scale_study"]

#: Verify families whose exact optimum is always tractable (used for the
#: quality half of the study).
QUALITY_FAMILIES = (
    "declared-chain",
    "geometric-chain",
    "geometric-scatter",
    "single-clique",
    "single-rate-chain",
)


@dataclass
class ScaleStudyResult:
    """Quality rows (vs exact) and scaling rows (vs topology size)."""

    quality_rows: List[List[object]]
    scaling_rows: List[List[object]]
    #: Number of quality instances whose bracket held (== len(quality_rows)
    #: on a healthy run; the runner raises otherwise).
    bracketed: int

    def table(self) -> str:
        quality = format_table(
            headers=["instance", "exact", "tiled LB", "tiled UB", "gap", "tiles"],
            rows=self.quality_rows,
            title="X7a: tiled bracket vs exact Eq. 6 (small instances)",
        )
        scaling = format_table(
            headers=[
                "nodes",
                "links",
                "hops",
                "tiles",
                "tiled LB",
                "tiled UB",
                "tiled s",
                "exact s",
                "speedup",
            ],
            rows=self.scaling_rows,
            title="X7b: wall-time scaling on constant-density scatter fields",
        )
        return quality + "\n\n" + scaling


def _scatter_instance(
    n_nodes: int, seed: int
) -> Tuple[Network, ProtocolInterferenceModel, Path, List[Tuple[Path, float]]]:
    """A constant-density scatter field with a long path and two cross flows."""
    edge = math.sqrt(float(n_nodes))
    network = scatter_topology(
        n_nodes, 60.0 * edge, 90.0 * edge, seed=seed
    )
    model = ProtocolInterferenceModel(network)
    graph = network.to_digraph()

    def route(source: str, destination: str) -> Optional[Path]:
        try:
            hops = nx.shortest_path(graph, source, destination)
        except nx.NetworkXException:
            return None
        if len(hops) < 2:
            return None
        return Path(
            network.link_between(a, b) for a, b in zip(hops, hops[1:])
        )

    reachable = nx.single_source_shortest_path(graph, "n0")
    farthest = max(reachable, key=lambda node: len(reachable[node]))
    new_path = route("n0", farthest)
    if new_path is None:
        raise InfeasibleProblemError(
            f"scatter seed {seed} left n0 isolated at {n_nodes} nodes"
        )
    node_ids = [node.node_id for node in network.nodes]
    background: List[Tuple[Path, float]] = []
    for source, destination in (
        (node_ids[5], node_ids[n_nodes // 2]),
        (node_ids[n_nodes // 3], node_ids[-3]),
    ):
        flow = route(source, destination)
        if flow is not None:
            background.append((flow, 0.5))
    return network, model, new_path, background


def run_scale_study(
    sizes: Sequence[int] = (64, 128, 192, 256, 512, 1000),
    exact_limit: int = 192,
    tile_size: int = 6,
    quality_instances: int = 12,
    seed: int = 8,
) -> ScaleStudyResult:
    """X7: bracket quality on small instances, wall time on large fields.

    Raises:
        InfeasibleProblemError: if any quality instance violates the
            ``LB ≤ exact ≤ UB`` bracket — that would mean the estimator is
            wrong, not slow, and must not be reported as a timing row.
    """
    recorder = get_recorder()
    config = TileConfig(tile_size=tile_size)

    # Quality half: deliberately tiny tiles (two path links each), so the
    # bracket is exercised with real multi-tile decompositions instead of
    # collapsing onto the exact solve.
    quality_config = TileConfig(tile_size=2)
    quality_rows: List[List[object]] = []
    bracketed = 0
    for instance in iter_instances(
        quality_instances, seed=seed, families=QUALITY_FAMILIES
    ):
        try:
            exact = available_path_bandwidth(
                instance.model, instance.new_path, instance.background
            ).available_bandwidth
        except InfeasibleProblemError:
            continue
        estimate = tiled_path_bandwidth(
            instance.model,
            instance.new_path,
            instance.background,
            quality_config,
        )
        tolerance = 1e-6 * max(1.0, abs(exact))
        if not (
            estimate.lower_bound <= exact + tolerance
            and exact <= estimate.upper_bound + tolerance
        ):
            raise InfeasibleProblemError(
                f"tiled bracket violated on {instance.name}: "
                f"LB={estimate.lower_bound} exact={exact} "
                f"UB={estimate.upper_bound}"
            )
        bracketed += 1
        quality_rows.append(
            [
                instance.name,
                exact,
                estimate.lower_bound,
                estimate.upper_bound,
                estimate.gap,
                len(estimate.tiles),
            ]
        )

    scaling_rows: List[List[object]] = []
    for n_nodes in sizes:
        network, model, new_path, background = _scatter_instance(
            n_nodes, seed
        )
        started = time.perf_counter()
        estimate = tiled_path_bandwidth(model, new_path, background, config)
        tiled_seconds = time.perf_counter() - started
        recorder.gauge(f"scale.study.tiled_seconds.n{n_nodes}", tiled_seconds)
        if n_nodes <= exact_limit:
            started = time.perf_counter()
            available_path_bandwidth(model, new_path, background)
            exact_seconds = time.perf_counter() - started
            exact_cell: object = exact_seconds
            speedup: object = exact_seconds / max(tiled_seconds, 1e-9)
        else:
            exact_cell = "-"
            speedup = "-"
        scaling_rows.append(
            [
                n_nodes,
                len(network.links),
                len(new_path),
                len(estimate.tiles),
                estimate.lower_bound,
                estimate.upper_bound,
                tiled_seconds,
                exact_cell,
                speedup,
            ]
        )
    return ScaleStudyResult(
        quality_rows=quality_rows,
        scaling_rows=scaling_rows,
        bracketed=bracketed,
    )
