"""ASCII rendering of geometric topologies and paths (Fig. 2 as text).

The paper's Fig. 2 is a scatter of 30 nodes with route arrows.  Without a
plotting dependency, a character grid conveys the same structure: node
markers at scaled coordinates and interpolated path traces.  Used by the
E3 experiment's report and handy in the REPL when debugging placements.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.net.path import Path
from repro.net.topology import Network

__all__ = ["render_topology"]

#: Characters used to trace paths, one per path, cycling.
_PATH_MARKS = "*+~^%&="


def render_topology(
    network: Network,
    paths: Sequence[Path] = (),
    width: int = 60,
    height: int = 30,
    label_nodes: bool = True,
) -> str:
    """Render the network on a ``width``×``height`` character grid.

    Nodes appear as ``o`` (or their index modulo 10 when labelled); each
    path is traced with its own marker along straight hop segments.  Node
    markers overwrite path markers so endpoints stay visible.
    """
    if not network.is_geometric:
        raise TopologyError("only geometric networks can be rendered")
    if width < 2 or height < 2:
        raise TopologyError("grid must be at least 2x2")
    nodes = list(network.nodes)
    xs = [node.x for node in nodes]
    ys = [node.y for node in nodes]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        column = round((x - min_x) / span_x * (width - 1))
        row = round((y - min_y) / span_y * (height - 1))
        return row, column

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    for path_index, path in enumerate(paths):
        mark = _PATH_MARKS[path_index % len(_PATH_MARKS)]
        for link in path:
            start = to_cell(link.sender.x, link.sender.y)
            end = to_cell(link.receiver.x, link.receiver.y)
            for row, column in _line_cells(start, end):
                grid[row][column] = mark

    for index, node in enumerate(nodes):
        row, column = to_cell(node.x, node.y)
        grid[row][column] = str(index % 10) if label_nodes else "o"

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = ""
    if paths:
        parts = [
            f"{_PATH_MARKS[i % len(_PATH_MARKS)]} {path}"
            for i, path in enumerate(paths)
        ]
        legend = "\n" + "\n".join(parts)
    return f"{border}\n{body}\n{border}{legend}"


def _line_cells(
    start: Tuple[int, int], end: Tuple[int, int]
) -> Iterable[Tuple[int, int]]:
    """Bresenham's line between two grid cells, inclusive."""
    row0, col0 = start
    row1, col1 = end
    d_row = abs(row1 - row0)
    d_col = abs(col1 - col0)
    step_row = 1 if row1 >= row0 else -1
    step_col = 1 if col1 >= col0 else -1
    error = d_col - d_row
    row, col = row0, col0
    while True:
        yield row, col
        if (row, col) == (row1, col1):
            return
        doubled = 2 * error
        if doubled > -d_row:
            error -= d_row
            col += step_col
        if doubled < d_col:
            error += d_col
            row += step_row
