"""Ablation experiments (A1–A3) for the design choices DESIGN.md calls out.

* **A1 — rate coupling**: how much throughput does time-varying link
  adaptation buy over the best *fixed* rate assignment?  (Scenario II:
  16.2 vs 15.43 Mbps; the gap is the paper's headline observation.)
* **A2 — column generation vs full enumeration**: same optimum, different
  cost profile.
* **A3 — analytic vs measured idleness**: feed the Section 4 estimators
  idleness from the optimal schedule vs from the CSMA/CA simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.bandwidth import available_path_bandwidth
from repro.core.column_generation import (
    min_airtime_column_generation,
    solve_with_column_generation,
)
from repro.core.independent_sets import RateIndependentSet
from repro.errors import InterferenceError
from repro.estimation.estimators import ESTIMATORS
from repro.estimation.idle_time import node_idleness_from_schedule, path_state_for
from repro.experiments.fig3_routing import Fig3Config, run_fig3
from repro.experiments.report import format_table
from repro.interference.base import InterferenceModel, LinkRate
from repro.interference.protocol import ProtocolInterferenceModel
from repro.mac.config import CsmaConfig
from repro.mac.simulator import simulate_background
from repro.net.link import Link
from repro.obs import Recorder, get_recorder
from repro.net.path import Path
from repro.phy.rates import Rate
from repro.workloads.scenarios import scenario_two

__all__ = [
    "fixed_rate_available_bandwidth",
    "AblationA1Result",
    "run_ablation_a1",
    "AblationA2Result",
    "run_ablation_a2",
    "AblationA3Result",
    "run_ablation_a3",
    "AblationA4Result",
    "run_ablation_a4",
    "AblationA5Result",
    "run_ablation_a5",
]


def fixed_rate_available_bandwidth(
    model: InterferenceModel,
    path: Path,
    rate_vector: Dict[Link, Rate],
    background: Sequence[Tuple[Path, float]] = (),
) -> float:
    """Eq. 6 restricted to one fixed rate assignment.

    Columns are the maximal independent sets of the conflict graph induced
    on exactly the couples of ``rate_vector`` — the network each link pins
    to one rate forever.
    """
    couples = [LinkRate(link, rate) for link, rate in rate_vector.items()]
    for couple in couples:
        if couple.rate not in model.standalone_rates(couple.link):
            raise InterferenceError(
                f"link {couple.link.link_id!r} does not support "
                f"{couple.rate.mbps:g} Mbps standalone"
            )
    graph = nx.Graph()
    graph.add_nodes_from(couples)
    for i, a in enumerate(couples):
        for b in couples[i + 1:]:
            if model.conflicts(a, b):
                graph.add_edge(a, b)
    columns = [
        RateIndependentSet(frozenset(members))
        for members in nx.find_cliques(nx.complement(graph))
    ]
    result = available_path_bandwidth(
        model, path, background, independent_sets=columns
    )
    return result.available_bandwidth


@dataclass
class AblationA1Result:
    multirate: float
    #: (rate vector description, fixed-rate optimum).
    fixed: List[Tuple[str, float]]

    @property
    def best_fixed(self) -> float:
        return max(value for _name, value in self.fixed)

    @property
    def adaptation_gain(self) -> float:
        """Multirate optimum over the best fixed assignment (≥ 1)."""
        return self.multirate / self.best_fixed

    def table(self) -> str:
        rows: List[List[object]] = [["multirate (Eq. 6)", self.multirate]]
        rows.extend([name, value] for name, value in self.fixed)
        rows.append(["link adaptation gain", self.adaptation_gain])
        return format_table(
            headers=["configuration", "end-to-end throughput (Mbps)"],
            rows=rows,
            title="A1: link adaptation vs fixed rate assignments (Scenario II)",
        )


def run_ablation_a1() -> AblationA1Result:
    """A1: multirate optimum vs all fixed rate assignments (Scenario II)."""
    bundle = scenario_two()
    model, path = bundle.model, bundle.path
    table = bundle.network.radio.rate_table
    multirate = available_path_bandwidth(model, path).available_bandwidth
    fixed: List[Tuple[str, float]] = []
    import itertools

    for combo in itertools.product(table.rates, repeat=len(path)):
        vector = dict(zip(path.links, combo))
        name = "R = (" + ",".join(f"{r.mbps:g}" for r in combo) + ")"
        fixed.append(
            (name, fixed_rate_available_bandwidth(model, path, vector))
        )
    fixed.sort(key=lambda item: -item[1])
    return AblationA1Result(multirate=multirate, fixed=fixed)


@dataclass
class AblationA2Result:
    #: (instance label, enumerated value, cg value, enum seconds, cg
    #: seconds, cg iterations).
    rows: List[Tuple[str, float, float, float, float, int]]

    def table(self) -> str:
        return format_table(
            headers=[
                "instance",
                "enumerated",
                "column generation",
                "enum (s)",
                "cg (s)",
                "cg iterations",
            ],
            rows=self.rows,
            title="A2: full enumeration vs column generation (same optimum)",
        )


def run_ablation_a2(config: Fig3Config = Fig3Config()) -> AblationA2Result:
    """A2: full enumeration vs column generation on the Fig. 3 instances.

    The enum/CG split is timed with ``repro.obs`` spans — the same clock
    the bench harness records — so the ablation report and
    ``BENCH_*.json`` share one timing source.  When tracing is active the
    spans join the run's global trace; otherwise a private recorder serves
    purely as the timer.
    """
    fig3 = run_fig3(config)
    model = ProtocolInterferenceModel(fig3.network)
    report = fig3.reports["average-e2eD"]
    recorder = get_recorder()
    if not recorder.enabled:
        recorder = Recorder()
    rows: List[Tuple[str, float, float, float, float, int]] = []
    background: List[Tuple[Path, float]] = []
    for outcome in report.outcomes[:4]:
        if outcome.path is None:
            continue
        with recorder.span("ablation.a2.enumeration") as enum_span:
            enumerated = available_path_bandwidth(
                model, outcome.path, background
            ).available_bandwidth
        with recorder.span("ablation.a2.column_generation") as cg_span:
            cg = solve_with_column_generation(model, outcome.path, background)
        rows.append(
            (
                f"{outcome.flow.flow_id} (+{len(background)} background)",
                enumerated,
                cg.result.available_bandwidth,
                enum_span.seconds,
                cg_span.seconds,
                cg.iterations,
            )
        )
        if outcome.admitted:
            background.append(
                (outcome.path, outcome.flow.demand_mbps)
            )
    return AblationA2Result(rows=rows)


@dataclass
class AblationA3Result:
    #: (estimator, estimate w/ analytic idleness, estimate w/ CSMA
    #: idleness, Eq. 6 truth).
    rows: List[Tuple[str, float, float]]
    truth: float

    def table(self) -> str:
        rendered: List[List[object]] = [
            [name, analytic, measured] for name, analytic, measured in self.rows
        ]
        rendered.append(["Eq. 6 truth", self.truth, self.truth])
        return format_table(
            headers=["estimator", "analytic idleness", "CSMA idleness"],
            rows=rendered,
            title="A3: estimator inputs — optimal schedule vs measured MAC",
        )


@dataclass
class AblationA4Result:
    """Propagation-exponent sensitivity of the routing comparison."""

    #: (exponent, admitted count per metric, max range of the slowest rate).
    rows: List[Tuple[float, Dict[str, int], float]]

    def table(self) -> str:
        metric_names = ["hop-count", "e2eTD", "average-e2eD"]
        rendered: List[List[object]] = []
        for exponent, counts, max_range in self.rows:
            rendered.append(
                [exponent, max_range]
                + [counts.get(name, 0) for name in metric_names]
            )
        return format_table(
            headers=["exponent", "max range (m)"] + metric_names,
            rows=rendered,
            title=(
                "A4: admitted flows per routing metric vs propagation "
                "exponent (ranges re-derived per exponent)"
            ),
        )

    def ordering_holds_everywhere(self) -> bool:
        for _exp, counts, _range in self.rows:
            if not (
                counts["hop-count"]
                <= counts["e2eTD"]
                <= counts["average-e2eD"]
            ):
                return False
        return True


def run_ablation_a4(
    exponents: Sequence[float] = (3.2, 3.6, 4.0),
    n_flows: int = 8,
    topology_seed: int = 8,
    flow_seed: int = 801,
) -> AblationA4Result:
    """Re-run the Fig. 3 comparison under different path-loss exponents.

    Ranges are re-derived per exponent (sensitivities fixed, see
    :func:`repro.phy.rates.paper_rate_table_for_exponent`); lower
    exponents stretch every range, densifying both connectivity and
    interference.  The claim under test: the routing-metric ordering
    (hop count ≤ e2eTD ≤ average-e2eD) is not an artifact of γ = 4.
    """
    from repro.net.random_topology import RandomTopologyConfig, random_topology
    from repro.phy.propagation import LogDistancePathLoss
    from repro.phy.radio import RadioConfig
    from repro.phy.rates import paper_rate_table_for_exponent
    from repro.routing.admission import run_sequential_admission
    from repro.routing.metrics import METRICS
    from repro.workloads.flows import random_flow_endpoints

    rows: List[Tuple[float, Dict[str, int], float]] = []
    for exponent in exponents:
        table = paper_rate_table_for_exponent(exponent)
        radio = RadioConfig(
            rate_table=table,
            path_loss=LogDistancePathLoss(exponent=exponent),
        )
        network = random_topology(
            radio, RandomTopologyConfig(), seed=topology_seed
        )
        model = ProtocolInterferenceModel(network)
        flows = random_flow_endpoints(
            network, n_flows, demand_mbps=2.0, seed=flow_seed,
            min_distance_m=100.0,
        )
        counts: Dict[str, int] = {}
        for name in ("hop-count", "e2eTD", "average-e2eD"):
            report = run_sequential_admission(
                network, model, flows, METRICS[name],
                use_column_generation=True,
            )
            counts[name] = report.admitted_count
        rows.append((exponent, counts, table.max_range_m))
    return AblationA4Result(rows=rows)


@dataclass
class AblationA5Result:
    """Protocol (pairwise) vs physical (cumulative) interference model."""

    #: (instance, protocol bandwidth, physical bandwidth).
    rows: List[Tuple[str, float, float]]

    def table(self) -> str:
        rendered = [
            [name, protocol, physical, protocol - physical]
            for name, protocol, physical in self.rows
        ]
        return format_table(
            headers=[
                "instance",
                "protocol (pairwise)",
                "physical (cumulative)",
                "optimism gap",
            ],
            rows=rendered,
            title=(
                "A5: available bandwidth under pairwise vs cumulative "
                "interference (pairwise can only be more permissive)"
            ),
        )

    def pairwise_never_below_cumulative(self) -> bool:
        return all(
            protocol + 1e-6 >= physical
            for _name, protocol, physical in self.rows
        )


def run_ablation_a5(
    spacings: Sequence[float] = (110.0, 160.0, 250.0),
    background_mbps: float = 5.0,
) -> AblationA5Result:
    """Compare the two geometric models where cumulative interference bites.

    Three parallel 50 m links ``spacing`` metres apart; the outer two
    carry background traffic, the middle link is the new path.  Under the
    single-interferer (protocol) test each outer link alone may be
    tolerable at some rate, while the *sum* of both (physical, Eq. 3)
    pushes the middle receiver below that rate's threshold — the classic
    regime where pairwise models overestimate.  Cumulative interference
    only removes concurrent sets or lowers rate vectors, so the physical
    value can never exceed the protocol one; the gap measures the
    pairwise model's optimism per spacing.
    """
    from repro.interference.physical import PhysicalInterferenceModel
    from repro.net.topology import Network
    from repro.phy.radio import RadioConfig

    rows: List[Tuple[str, float, float]] = []
    for spacing in spacings:
        network = Network(RadioConfig(), name=f"parallel-{spacing:g}")
        for index in range(3):
            network.add_node(f"t{index}", x=0.0, y=index * spacing)
            network.add_node(f"r{index}", x=50.0, y=index * spacing)
            network.add_link(f"t{index}", f"r{index}", link_id=f"L{index}")
        path = Path([network.link("L1")])
        background = [
            (Path([network.link("L0")]), background_mbps),
            (Path([network.link("L2")]), background_mbps),
        ]
        protocol_value = available_path_bandwidth(
            ProtocolInterferenceModel(network), path, background
        ).available_bandwidth
        physical_value = available_path_bandwidth(
            PhysicalInterferenceModel(network), path, background
        ).available_bandwidth
        rows.append(
            (
                f"3 parallel links, {spacing:g} m apart",
                protocol_value,
                physical_value,
            )
        )
    return AblationA5Result(rows=rows)


def run_ablation_a3(
    config: Fig3Config = Fig3Config(),
    csma_config: Optional[CsmaConfig] = None,
    seed: int = 5,
) -> AblationA3Result:
    """A3: estimators fed optimal-schedule vs CSMA-measured idleness."""
    if csma_config is None:
        csma_config = CsmaConfig(sim_slots=60_000, warmup_slots=5_000)
    fig3 = run_fig3(config)
    model = ProtocolInterferenceModel(fig3.network)
    report = fig3.reports["average-e2eD"]
    outcomes = [o for o in report.outcomes if o.path is not None]
    if len(outcomes) < 2:
        raise InterferenceError("need at least two routed flows for A3")
    target = outcomes[-1]
    background = [
        (o.path, o.flow.demand_mbps)
        for o in outcomes[:-1]
        if o.admitted
    ]
    schedule = min_airtime_column_generation(model, background)
    analytic_idle = node_idleness_from_schedule(fig3.network, schedule, model)
    mac_report = simulate_background(
        fig3.network, model, background, config=csma_config, seed=seed
    )
    rows: List[Tuple[str, float, float]] = []
    state_analytic = path_state_for(model, target.path, analytic_idle)
    state_measured = path_state_for(
        model, target.path, mac_report.node_idleness
    )
    for name, estimator in ESTIMATORS.items():
        rows.append(
            (
                name,
                estimator.estimate(state_analytic),
                estimator.estimate(state_measured),
            )
        )
    return AblationA3Result(rows=rows, truth=target.available_bandwidth)
