"""Plain-text table rendering for experiment reports.

Every experiment prints the same rows/series the paper's figures plot; a
small fixed-width table formatter keeps that output dependency-free and
diff-friendly (benchmark harnesses capture it verbatim).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_cell"]


def format_cell(value: object, precision: int = 3) -> str:
    """One cell: floats rounded, NaN shown as '-', everything else str()."""
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            return "-inf" if value < 0 else "inf"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned fixed-width table."""
    rendered: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(width) for cell, width in zip(cells, widths)
        )

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
