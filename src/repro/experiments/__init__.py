"""Experiments: one module per paper figure/table plus ablations.

========  =============================================  ======================
ID        Paper artifact                                 Runner
========  =============================================  ======================
e1        Fig. 1 Scenario I (idle-time pathology)        :func:`run_scenario1`
e2        Section 5.1 worked example (Scenario II)       :func:`run_scenario2`
e3        Fig. 2 (placement + per-metric paths)          :func:`run_fig2`
e4        Fig. 3 (bandwidth per flow per metric)         :func:`run_fig3`
e5        Fig. 4 (estimators vs truth)                   :func:`run_fig4`
a1        Ablation: link adaptation gain                 :func:`run_ablation_a1`
a2        Ablation: column generation vs enumeration     :func:`run_ablation_a2`
a3        Ablation: analytic vs measured idleness        :func:`run_ablation_a3`
========  =============================================  ======================
"""

from repro.experiments.ablations import (
    AblationA1Result,
    AblationA2Result,
    AblationA3Result,
    AblationA4Result,
    AblationA5Result,
    fixed_rate_available_bandwidth,
    run_ablation_a1,
    run_ablation_a2,
    run_ablation_a3,
    run_ablation_a4,
    run_ablation_a5,
)
from repro.experiments.churn_study import ChurnStudyResult, run_churn_study
from repro.experiments.online_study import (
    OnlinePolicyOutcome,
    OnlineStudyResult,
    run_online_study,
)
from repro.experiments.extensions import (
    AdmissionAccuracyResult,
    JointAdmissionResult,
    JointRoutingResult,
    run_admission_accuracy,
    run_joint_admission,
    run_joint_routing,
)
from repro.experiments.checkpoint import (
    CheckpointStore,
    get_checkpoint_store,
    use_checkpoint_store,
)
from repro.experiments.failures import (
    ItemFailure,
    collect_failures,
    format_failures,
    record_failure,
)
from repro.experiments.fig2_paths import Fig2Result, run_fig2
from repro.experiments.fig3_routing import Fig3Config, Fig3Result, run_fig3
from repro.experiments.fig4_estimation import Fig4Result, run_fig4
from repro.experiments.parallel import fault_tolerant_map, parallel_map
from repro.experiments.report import format_table
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.ascii_map import render_topology
from repro.experiments.scale_study import ScaleStudyResult, run_scale_study
from repro.experiments.scenario1 import Scenario1Result, run_scenario1
from repro.experiments.scenario2 import Scenario2Result, run_scenario2
from repro.experiments.seed_study import SeedStudyResult, run_seed_study

__all__ = [
    "run_scenario1",
    "Scenario1Result",
    "run_scenario2",
    "Scenario2Result",
    "run_fig2",
    "Fig2Result",
    "run_fig3",
    "Fig3Config",
    "Fig3Result",
    "run_fig4",
    "Fig4Result",
    "run_ablation_a1",
    "AblationA1Result",
    "run_ablation_a2",
    "AblationA2Result",
    "run_ablation_a3",
    "AblationA3Result",
    "run_ablation_a4",
    "AblationA4Result",
    "run_ablation_a5",
    "AblationA5Result",
    "fixed_rate_available_bandwidth",
    "run_admission_accuracy",
    "AdmissionAccuracyResult",
    "run_joint_routing",
    "JointRoutingResult",
    "run_churn_study",
    "ChurnStudyResult",
    "run_online_study",
    "OnlineStudyResult",
    "OnlinePolicyOutcome",
    "run_joint_admission",
    "JointAdmissionResult",
    "format_table",
    "render_topology",
    "run_seed_study",
    "SeedStudyResult",
    "run_scale_study",
    "ScaleStudyResult",
    "EXPERIMENTS",
    "run_experiment",
    "parallel_map",
    "fault_tolerant_map",
    "ItemFailure",
    "collect_failures",
    "record_failure",
    "format_failures",
    "CheckpointStore",
    "use_checkpoint_store",
    "get_checkpoint_store",
]
