"""Per-item checkpoint store for resumable experiment sweeps.

A sweep that dies at item 47 of 60 should not redo the first 46:
:class:`CheckpointStore` persists each completed item's result under a run
directory, and a resumed sweep (``repro run e3 --checkpoint-dir runs/e3
--resume``) loads the stored results and only executes what is missing.
Because stored results are the *same objects* the sweep would have
produced, a resumed run renders byte-identical tables to an uninterrupted
one (pinned by ``tests/test_checkpoint.py``).

Layout::

    <root>/
      MANIFEST.json            # {"schema_version", "experiment_id"}
      items/
        <slug>-<digest>.json   # one envelope per completed item key

Each item file is a JSON envelope carrying the pickled result
(base64-encoded) plus a SHA-256 checksum.  Writes are atomic (temp file +
``os.replace``), so a run killed mid-write never leaves a truncated
envelope behind as a valid checkpoint.  A corrupted file — unparseable
JSON, checksum mismatch, failed unpickle — is *never* fatal: the item is
treated as missing, re-executed, and counted under the
``checkpoint.corrupt`` obs counter.

Like the :mod:`repro.obs` recorder, the store is ambient: the CLI
installs one with :func:`use_checkpoint_store` and
:func:`~repro.experiments.parallel.fault_tolerant_map` picks it up via
:func:`get_checkpoint_store`, so experiment code needs no extra plumbing.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import re
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.obs import get_recorder

__all__ = [
    "CheckpointStore",
    "use_checkpoint_store",
    "get_checkpoint_store",
]

#: Version of the manifest / item-envelope layout.
STORE_SCHEMA_VERSION = 1

_MANIFEST = "MANIFEST.json"
_ITEMS_DIR = "items"


def _slug(key: str) -> str:
    """Filesystem-safe, collision-free file stem for an item key."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", key)[:60] or "item"
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
    return f"{safe}-{digest}"


class CheckpointStore:
    """Per-item result persistence under one run directory.

    One store corresponds to one experiment run; the manifest pins the
    experiment id so ``--resume`` cannot silently mix results from a
    different experiment into a run directory.
    """

    def __init__(self, root: str, experiment_id: str):
        self.root = root
        self.experiment_id = experiment_id
        self._items_dir = os.path.join(root, _ITEMS_DIR)
        os.makedirs(self._items_dir, exist_ok=True)
        self._check_or_write_manifest()

    # -- manifest ------------------------------------------------------------

    def _check_or_write_manifest(self) -> None:
        path = os.path.join(self.root, _MANIFEST)
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError) as error:
                raise CheckpointError(
                    f"unreadable checkpoint manifest at {path}: {error}"
                ) from error
            stored = manifest.get("experiment_id")
            if stored != self.experiment_id:
                raise CheckpointError(
                    f"checkpoint directory {self.root!r} belongs to "
                    f"experiment {stored!r}, not {self.experiment_id!r}; "
                    "use a fresh --checkpoint-dir"
                )
            version = manifest.get("schema_version")
            if version != STORE_SCHEMA_VERSION:
                raise CheckpointError(
                    f"checkpoint schema version {version!r} is not "
                    f"{STORE_SCHEMA_VERSION} (directory {self.root!r})"
                )
            return
        document = {
            "schema_version": STORE_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
        }
        self._atomic_write(path, json.dumps(document, indent=2) + "\n")

    # -- item I/O ------------------------------------------------------------

    def item_path(self, key: str) -> str:
        """Path of the envelope file that would hold item ``key``."""
        return os.path.join(self._items_dir, _slug(key) + ".json")

    def load(self, key: str) -> Tuple[bool, Any]:
        """``(found, value)`` for item ``key``.

        Corruption of any kind (bad JSON, checksum mismatch, unpicklable
        payload) is treated as *missing* — counted under
        ``checkpoint.corrupt`` — so a damaged file costs one re-execution,
        never the run.
        """
        path = self.item_path(key)
        if not os.path.exists(path):
            return False, None
        recorder = get_recorder()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            if envelope.get("schema_version") != STORE_SCHEMA_VERSION:
                raise ValueError("unknown envelope schema version")
            if envelope.get("key") != key:
                raise ValueError("envelope key mismatch")
            payload = envelope["payload"]
            digest = hashlib.sha256(payload.encode("ascii")).hexdigest()
            if digest != envelope.get("sha256"):
                raise ValueError("payload checksum mismatch")
            value = pickle.loads(base64.b64decode(payload))
        except Exception:
            recorder.count("checkpoint.corrupt")
            return False, None
        recorder.count("checkpoint.hits")
        return True, value

    def store(self, key: str, value: Any) -> None:
        """Persist item ``key`` atomically; overwrites a previous result."""
        payload = base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        envelope = {
            "schema_version": STORE_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "key": key,
            "codec": "pickle+base64",
            "sha256": hashlib.sha256(payload.encode("ascii")).hexdigest(),
            "payload": payload,
        }
        self._atomic_write(
            self.item_path(key), json.dumps(envelope, indent=2) + "\n"
        )
        get_recorder().count("checkpoint.writes")

    def keys(self) -> List[str]:
        """Keys of every (well-formed) stored item."""
        found: List[str] = []
        for name in sorted(os.listdir(self._items_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(
                    os.path.join(self._items_dir, name),
                    "r",
                    encoding="utf-8",
                ) as handle:
                    envelope = json.load(handle)
                found.append(envelope["key"])
            except Exception:
                continue
        return found

    def clear_items(self) -> None:
        """Delete all stored items (a fresh, non-resumed run starts here)."""
        for name in os.listdir(self._items_dir):
            try:
                os.unlink(os.path.join(self._items_dir, name))
            except OSError:
                pass

    @staticmethod
    def _atomic_write(path: str, text: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)


#: The ambient store consulted by fault-tolerant sweeps (``None`` = off).
_current_store: Optional[CheckpointStore] = None


def get_checkpoint_store() -> Optional[CheckpointStore]:
    """The checkpoint store sweeps should read/write, or ``None``."""
    return _current_store


@contextmanager
def use_checkpoint_store(
    store: Optional[CheckpointStore],
) -> Iterator[Optional[CheckpointStore]]:
    """Install ``store`` as the ambient checkpoint store for the block."""
    global _current_store
    previous = _current_store
    _current_store = store
    try:
        yield store
    finally:
        _current_store = previous
