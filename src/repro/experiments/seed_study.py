"""Seed-robustness study for the routing-metric comparison.

The paper evaluates on one unpublished random placement; any reproduction
must show its conclusions do not hinge on the placement.  This study
re-runs the Fig. 3 comparison across many (topology, flow) seeds and
aggregates:

* how often the admitted-flow ordering hop count ≤ e2eTD ≤ average-e2eD
  holds, and how often average-e2eD *strictly* beats e2eTD;
* the distribution of admitted counts per metric.

EXPERIMENTS.md quotes this study's outcome; the S1 benchmark runs a
reduced version and asserts the ordering never inverts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.experiments.report import format_table
from repro.experiments.parallel import fault_tolerant_map
from repro.interference.protocol import ProtocolInterferenceModel
from repro.routing.admission import run_sequential_admission
from repro.routing.metrics import METRICS
from repro.workloads.flows import random_flow_endpoints
from repro.workloads.scenarios import paper_random_topology

__all__ = ["SeedStudyResult", "run_seed_study"]

_METRIC_NAMES = ("hop-count", "e2eTD", "average-e2eD")


@dataclass
class SeedStudyResult:
    """Aggregated outcome over all evaluated seeds."""

    #: (seed, admitted count per metric).
    per_seed: List[Tuple[int, Dict[str, int]]]
    skipped_seeds: List[int]

    @property
    def seeds_evaluated(self) -> int:
        return len(self.per_seed)

    def ordering_violations(self) -> int:
        """Seeds where hop ≤ e2eTD ≤ average-e2eD fails."""
        violations = 0
        for _seed, counts in self.per_seed:
            if not (
                counts["hop-count"]
                <= counts["e2eTD"]
                <= counts["average-e2eD"]
            ):
                violations += 1
        return violations

    def strict_wins(self) -> int:
        """Seeds where average-e2eD strictly beats e2eTD."""
        return sum(
            1
            for _seed, counts in self.per_seed
            if counts["average-e2eD"] > counts["e2eTD"]
        )

    def mean_admitted(self) -> Dict[str, float]:
        means: Dict[str, float] = {}
        for name in _METRIC_NAMES:
            means[name] = sum(
                counts[name] for _s, counts in self.per_seed
            ) / max(1, self.seeds_evaluated)
        return means

    def table(self) -> str:
        rows: List[List[object]] = [
            [seed] + [counts[name] for name in _METRIC_NAMES]
            for seed, counts in self.per_seed
        ]
        means = self.mean_admitted()
        rows.append(["mean"] + [means[name] for name in _METRIC_NAMES])
        summary = format_table(
            headers=["seed"] + list(_METRIC_NAMES),
            rows=rows,
            title=(
                "S1: admitted flows per metric across seeds "
                f"({self.seeds_evaluated} placements, "
                f"{self.ordering_violations()} ordering violations, "
                f"{self.strict_wins()} strict average-e2eD wins)"
            ),
        )
        return summary


def _evaluate_seed(
    args: Tuple[int, int, float, float],
) -> Tuple[int, Optional[Dict[str, int]]]:
    """Admitted-count triple for one seed; ``None`` counts when skipped.

    Module-level (picklable) so :func:`parallel_map` can ship it to worker
    processes; everything is rebuilt from the seed, making parallel runs
    byte-identical to sequential ones.
    """
    seed, n_flows, demand_mbps, min_distance_m = args
    try:
        network = paper_random_topology(seed=seed)
    except TopologyError:
        return (seed, None)
    model = ProtocolInterferenceModel(network)
    flows = random_flow_endpoints(
        network,
        n_flows,
        demand_mbps=demand_mbps,
        seed=seed * 100 + 1,
        min_distance_m=min_distance_m,
    )
    counts: Dict[str, int] = {}
    for name in _METRIC_NAMES:
        report = run_sequential_admission(
            network, model, flows, METRICS[name],
            use_column_generation=True,
        )
        counts[name] = report.admitted_count
    return (seed, counts)


def run_seed_study(
    seeds: Sequence[int] = tuple(range(1, 13)),
    n_flows: int = 8,
    demand_mbps: float = 2.0,
    min_distance_m: float = 100.0,
    workers: Optional[int] = None,
) -> SeedStudyResult:
    """Run the Fig. 3 comparison for every seed; skip unconnectable ones.

    ``workers > 1`` evaluates seeds in parallel processes; results are
    identical to the sequential run (each seed is self-contained).

    The sweep is fault isolated per seed: with a failure collector active
    a crashing seed is recorded as an
    :class:`~repro.experiments.failures.ItemFailure` and omitted from the
    aggregate (like a skipped seed, but reported); with a checkpoint
    store active, evaluated seeds persist across interrupted runs.
    """
    seeds = list(seeds)
    outcomes = fault_tolerant_map(
        _evaluate_seed,
        [(seed, n_flows, demand_mbps, min_distance_m) for seed in seeds],
        workers=workers,
        item_keys=[f"seed-{seed}" for seed in seeds],
        item_seeds=seeds,
    )
    per_seed: List[Tuple[int, Dict[str, int]]] = []
    skipped: List[int] = []
    for outcome in outcomes:
        if outcome is None:
            continue
        seed, counts = outcome
        if counts is None:
            skipped.append(seed)
        else:
            per_seed.append((seed, counts))
    return SeedStudyResult(per_seed=per_seed, skipped_seeds=skipped)
