"""Deterministic process-pool fan-out for experiment sweeps.

Kept separate from :mod:`repro.experiments.runner` so experiment modules
can import it without touching the experiment registry (which imports the
experiment modules — a cycle otherwise).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["parallel_map"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    workers: Optional[int] = None,
) -> List[_ResultT]:
    """Map ``fn`` over ``items``, optionally across processes.

    With ``workers`` ``None``/``<= 1`` (or fewer than two items) this is a
    plain in-process list map.  Otherwise the items are dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; ``fn`` and every item
    must be picklable, and results are returned in input order regardless
    of completion order — parallelism never changes the output.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))
