"""Deterministic process-pool fan-out for experiment sweeps.

Kept separate from :mod:`repro.experiments.runner` so experiment modules
can import it without touching the experiment registry (which imports the
experiment modules — a cycle otherwise).

When a recorder is active (``repro run --trace``), each worker process
records into a fresh :class:`~repro.obs.Recorder` and ships its snapshot
back with the result; the parent grafts them in submission order under
``parallel.worker[<i>]`` spans, so a parallel trace carries per-worker
wall time and the workers' solver counters.  Tracing never changes the
results — the same items run through the same ``fn`` either way.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.obs import Recorder, get_recorder, use_recorder

__all__ = ["parallel_map"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def _traced_call(
    payload: Tuple[Callable[[Any], Any], Any],
) -> Tuple[Any, float, Dict[str, Any]]:
    """Worker-side wrapper: run one item under a fresh recorder.

    Returns (result, wall seconds, recorder snapshot).  Module-level so it
    pickles; the previous recorder is always restored because pool workers
    are reused across items.
    """
    fn, item = payload
    recorder = Recorder()
    started = time.perf_counter()
    with use_recorder(recorder):
        result = fn(item)
    return result, time.perf_counter() - started, recorder.snapshot()


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    workers: Optional[int] = None,
) -> List[_ResultT]:
    """Map ``fn`` over ``items``, optionally across processes.

    With ``workers`` ``None``/``<= 1`` (or fewer than two items) this is a
    plain in-process list map.  Otherwise the items are dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; ``fn`` and every item
    must be picklable, and results are returned in input order regardless
    of completion order — parallelism never changes the output.
    """
    items = list(items)
    recorder = get_recorder()
    if workers is None or workers <= 1 or len(items) <= 1:
        if not recorder.enabled:
            return [fn(item) for item in items]
        results: List[_ResultT] = []
        for index, item in enumerate(items):
            with recorder.span(f"parallel.worker[{index}]"):
                results.append(fn(item))
        return results
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        if not recorder.enabled:
            return list(pool.map(fn, items))
        outcomes = list(
            pool.map(_traced_call, [(fn, item) for item in items])
        )
    results = []
    for index, (result, seconds, snapshot) in enumerate(outcomes):
        recorder.merge(
            snapshot, under=f"parallel.worker[{index}]", seconds=seconds
        )
        results.append(result)
    return results
