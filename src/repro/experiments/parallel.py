"""Deterministic process-pool fan-out for experiment sweeps.

Kept separate from :mod:`repro.experiments.runner` so experiment modules
can import it without touching the experiment registry (which imports the
experiment modules — a cycle otherwise).

Two entry points share the machinery:

* :func:`parallel_map` — the original fail-fast map: any exception
  aborts the sweep.  Byte-identical results sequential vs parallel.
* :func:`fault_tolerant_map` — per-item fault isolation and
  checkpointing.  A worker exception (or a crashed worker process)
  records a structured :class:`~repro.experiments.failures.ItemFailure`
  with the active collector and leaves a ``None`` hole in the result
  list instead of killing the sweep; items stranded by a broken process
  pool are re-executed in-process (MapReduce-style re-execution), so one
  dead worker costs one item, not the run.  When a checkpoint store is
  active (``repro run --checkpoint-dir``), completed items are persisted
  and previously stored items are loaded instead of re-executed — a
  resumed sweep is byte-identical to an uninterrupted one.

When a recorder is active (``repro run --trace``), each worker process
records into a fresh :class:`~repro.obs.Recorder` and ships its snapshot
back with the result; the parent grafts them in submission order under
``parallel.worker[<i>]`` spans, so a parallel trace carries per-worker
wall time and the workers' solver counters.  Tracing never changes the
results — the same items run through the same ``fn`` either way.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.experiments.checkpoint import get_checkpoint_store
from repro.experiments.failures import ItemFailure, record_failure
from repro.obs import Recorder, get_recorder, use_recorder

__all__ = ["parallel_map", "fault_tolerant_map", "set_worker_fault_hook"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Test-only hook (see :mod:`repro.testing.faults`): called once per
#: dispatched item of a fault-tolerant sweep with the item's key; a truthy
#: return crashes that item's worker (parallel) or fails the item
#: (sequential).  ``None`` (the default) is free.
_worker_fault_hook: Optional[Callable[[str], bool]] = None


def set_worker_fault_hook(hook: Optional[Callable[[str], bool]]) -> None:
    """Install (or with ``None`` remove) the worker fault-injection hook."""
    global _worker_fault_hook
    _worker_fault_hook = hook


def _traced_call(
    payload: Tuple[Callable[[Any], Any], Any, bool],
) -> Tuple[Any, float, Dict[str, Any]]:
    """Worker-side wrapper: run one item under a fresh recorder.

    Returns (result, wall seconds, recorder snapshot).  ``events`` is the
    parent recorder's event mode: an event-mode parent gets event-mode
    workers, so each worker ships a timeline the parent keeps as its own
    export track.  Module-level so it pickles; the previous recorder is
    always restored because pool workers are reused across items.
    """
    fn, item, events = payload
    recorder = Recorder(events=events)
    started = time.perf_counter()
    with use_recorder(recorder):
        result = fn(item)
    seconds = time.perf_counter() - started
    recorder.histogram("parallel.item_seconds", seconds)
    return result, seconds, recorder.snapshot()


def _isolated_call(
    payload: Tuple[Callable[[Any], Any], Any, bool, bool, bool],
) -> Tuple[Any, float, Optional[Dict[str, Any]]]:
    """Worker-side wrapper for fault-tolerant sweeps.

    ``crash`` is the parent's fault-injection decision: the worker process
    exits hard (``os._exit``), exactly like a segfaulting or OOM-killed
    worker, which surfaces in the parent as ``BrokenProcessPool``.
    """
    fn, item, crash, traced, events = payload
    if crash:
        os._exit(77)
    if not traced:
        return fn(item), 0.0, None
    recorder = Recorder(events=events)
    started = time.perf_counter()
    with use_recorder(recorder):
        result = fn(item)
    seconds = time.perf_counter() - started
    recorder.histogram("parallel.item_seconds", seconds)
    return result, seconds, recorder.snapshot()


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    workers: Optional[int] = None,
) -> List[_ResultT]:
    """Map ``fn`` over ``items``, optionally across processes.

    With ``workers`` ``None``/``<= 1`` (or fewer than two items) this is a
    plain in-process list map.  Otherwise the items are dispatched to a
    :class:`~concurrent.futures.ProcessPoolExecutor`; ``fn`` and every item
    must be picklable, and results are returned in input order regardless
    of completion order — parallelism never changes the output.

    Fail-fast: the first exception aborts the sweep.  Sweeps that should
    survive bad items use :func:`fault_tolerant_map`.
    """
    items = list(items)
    recorder = get_recorder()
    if workers is None or workers <= 1 or len(items) <= 1:
        if not recorder.enabled:
            return [fn(item) for item in items]
        results: List[_ResultT] = []
        for index, item in enumerate(items):
            started = time.perf_counter()
            with recorder.span(f"parallel.worker[{index}]"):
                results.append(fn(item))
            recorder.histogram(
                "parallel.item_seconds", time.perf_counter() - started
            )
        return results
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        if not recorder.enabled:
            return list(pool.map(fn, items))
        events = getattr(recorder, "events_enabled", False)
        outcomes = list(
            pool.map(_traced_call, [(fn, item, events) for item in items])
        )
    results = []
    for index, (result, seconds, snapshot) in enumerate(outcomes):
        recorder.merge(
            snapshot, under=f"parallel.worker[{index}]", seconds=seconds
        )
        results.append(result)
    return results


def _injected_crash_failure(key: str, seed: Optional[int]) -> ItemFailure:
    return ItemFailure(
        item_key=key,
        error_type="InjectedWorkerCrash",
        message="worker process crashed (injected fault)",
        seed=seed,
    )


def fault_tolerant_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    workers: Optional[int] = None,
    item_keys: Optional[Sequence[str]] = None,
    item_seeds: Optional[Sequence[Optional[int]]] = None,
) -> List[Optional[_ResultT]]:
    """Map ``fn`` over ``items`` with per-item fault isolation.

    Semantics on top of :func:`parallel_map`:

    * a failed item records an
      :class:`~repro.experiments.failures.ItemFailure` with the active
      collector (:func:`~repro.experiments.failures.collect_failures`)
      and yields ``None`` at its position — the sweep continues.  With no
      collector active the original exception propagates (fail-fast, like
      :func:`parallel_map`);
    * a crashed worker *process* breaks the pool, but not the sweep: the
      items stranded by the break are re-executed in-process, in input
      order, so only items that fail deterministically are lost;
    * when a checkpoint store is active
      (:func:`~repro.experiments.checkpoint.use_checkpoint_store`),
      previously completed items are loaded instead of executed and new
      completions are persisted under ``item_keys`` — the resume path.

    ``item_keys`` names each item stably across runs (required for
    checkpointing to resume correctly); it defaults to ``item[<i>]``.
    ``item_seeds`` optionally attaches a reproduction seed per item to its
    failure record.
    """
    items = list(items)
    keys = (
        [str(key) for key in item_keys]
        if item_keys is not None
        else [f"item[{index}]" for index in range(len(items))]
    )
    if len(keys) != len(items):
        raise ValueError("item_keys must match items in length")
    seeds: List[Optional[int]] = (
        list(item_seeds) if item_seeds is not None else [None] * len(items)
    )
    if len(seeds) != len(items):
        raise ValueError("item_seeds must match items in length")

    recorder = get_recorder()
    store = get_checkpoint_store()
    results: List[Optional[_ResultT]] = [None] * len(items)
    pending: List[int] = []
    for index in range(len(items)):
        if store is not None:
            found, value = store.load(keys[index])
            if found:
                results[index] = value
                continue
        pending.append(index)
    if not pending:
        return results

    hook = _worker_fault_hook
    crashes = {
        index: bool(hook(keys[index])) if hook is not None else False
        for index in pending
    }

    def _run_inline(index: int) -> None:
        """Execute one item in-process with isolation bookkeeping."""
        if crashes[index]:
            failure = _injected_crash_failure(keys[index], seeds[index])
            record_failure(
                failure,
                error=RuntimeError(failure.message),
            )
            return
        try:
            if recorder.enabled:
                started = time.perf_counter()
                with recorder.span(f"parallel.worker[{index}]"):
                    result = fn(items[index])
                recorder.histogram(
                    "parallel.item_seconds", time.perf_counter() - started
                )
            else:
                result = fn(items[index])
        except (Exception, SystemExit) as error:
            record_failure(
                ItemFailure.from_exception(
                    keys[index], error, seed=seeds[index]
                ),
                error=error,
            )
            return
        results[index] = result
        if store is not None:
            store.store(keys[index], result)

    if workers is None or workers <= 1 or len(pending) <= 1:
        for index in pending:
            _run_inline(index)
        return results

    traced = recorder.enabled
    events = getattr(recorder, "events_enabled", False)
    stranded: List[int] = []
    broke = False
    with ProcessPoolExecutor(
        max_workers=min(workers, len(pending))
    ) as pool:
        futures = {
            index: pool.submit(
                _isolated_call,
                (fn, items[index], crashes[index], traced, events),
            )
            for index in pending
        }
        for index in pending:
            try:
                result, seconds, snapshot = futures[index].result()
            except BrokenProcessPool:
                broke = True
                stranded.append(index)
                continue
            except (Exception, SystemExit) as error:
                record_failure(
                    ItemFailure.from_exception(
                        keys[index], error, seed=seeds[index]
                    ),
                    error=error,
                )
                continue
            if snapshot is not None:
                recorder.merge(
                    snapshot,
                    under=f"parallel.worker[{index}]",
                    seconds=seconds,
                )
            results[index] = result
            if store is not None:
                store.store(keys[index], result)
    if broke:
        recorder.count("parallel.broken_pool")
    for index in stranded:
        if not crashes[index]:
            recorder.count("parallel.retried_items")
        _run_inline(index)
    return results
