"""Test support: deterministic fault injection for resilience testing.

See :mod:`repro.testing.faults`.  Nothing here is imported by the library
at runtime unless injection is explicitly activated (``repro run
--inject-faults`` or the :func:`~repro.testing.faults.inject_faults`
context manager), so production paths pay nothing for it.
"""

from repro.testing.faults import (
    FaultPlan,
    InjectedSolverFault,
    corrupt_checkpoint_file,
    inject_faults,
    plan_from_spec,
)

__all__ = [
    "FaultPlan",
    "InjectedSolverFault",
    "corrupt_checkpoint_file",
    "inject_faults",
    "plan_from_spec",
]
