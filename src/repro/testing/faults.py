"""Deterministic fault injection: prove the degradation paths actually work.

Long campaigns die in three characteristic ways — an LP solver hiccup, a
crashed pool worker, a corrupted checkpoint file.  The resilience layer
claims to absorb all three; this module *injects* each one at an exact,
reproducible point so tests (and the CI chaos job) can assert the claimed
behaviour instead of trusting it:

* **solver failure** — the Nth :meth:`repro.core.lp.LinearProgram.solve`
  call's primary attempt raises; the retry/fallback chain must recover
  (``solver@N``), or every attempt raises and the structured
  :class:`~repro.errors.SolverError` must surface (``solver-fatal@N``);
* **worker crash** — the Nth dispatched item of a fault-isolated sweep
  hard-kills its worker process (``os._exit``), surfacing as
  ``BrokenProcessPool`` in the parent, which must re-execute stranded
  items and record an ``ItemFailure`` for the crashed one (``worker@N``);
* **corrupted checkpoint** — :func:`corrupt_checkpoint_file` damages a
  stored item deterministically; the store must treat it as missing and
  re-execute.

Injection is count-based, not random: ``solver@3`` always hits the third
solve, so a failing chaos test replays exactly.  Activate with::

    with inject_faults(plan_from_spec("solver@1,worker@2")):
        run_experiment("e3", workers=2)

or from the CLI: ``repro run e3 --workers 2 --inject-faults worker@1``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator

from repro.core.lp import set_solver_fault_hook
from repro.errors import ConfigurationError, ReproError
from repro.experiments.parallel import set_worker_fault_hook

__all__ = [
    "FaultPlan",
    "InjectedSolverFault",
    "inject_faults",
    "plan_from_spec",
    "corrupt_checkpoint_file",
]


class InjectedSolverFault(ReproError, RuntimeError):
    """Raised inside an LP solver attempt by the injection harness."""


@dataclass(frozen=True)
class FaultPlan:
    """Which faults to inject, by deterministic occurrence index (1-based).

    ``solver_failures`` fails only the *primary* attempt of the targeted
    solves (the fallback chain should absorb it); ``solver_fatal`` fails
    *every* attempt (the solve must surface a structured
    :class:`~repro.errors.SolverError`).  ``worker_crashes`` indexes the
    items dispatched by fault-isolated sweeps, in dispatch order, counted
    across all sweeps of the injection scope.
    """

    solver_failures: FrozenSet[int] = field(default_factory=frozenset)
    solver_fatal: FrozenSet[int] = field(default_factory=frozenset)
    worker_crashes: FrozenSet[int] = field(default_factory=frozenset)


class _ActiveInjection:
    """Mutable counters for one activation of a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.solve_calls = 0
        self.items_dispatched = 0
        self.solver_faults_fired = 0
        self.worker_crashes_fired = 0

    def solver_hook(self, attempt_index: int, method: str) -> None:
        if attempt_index == 0:
            self.solve_calls += 1
        if self.solve_calls in self.plan.solver_fatal:
            self.solver_faults_fired += 1
            raise InjectedSolverFault(
                f"injected solver fault (solve #{self.solve_calls}, "
                f"attempt {attempt_index}: {method})"
            )
        if attempt_index == 0 and self.solve_calls in self.plan.solver_failures:
            self.solver_faults_fired += 1
            raise InjectedSolverFault(
                f"injected solver fault (solve #{self.solve_calls}, "
                f"primary attempt: {method})"
            )

    def worker_hook(self, item_key: str) -> bool:
        self.items_dispatched += 1
        crash = self.items_dispatched in self.plan.worker_crashes
        if crash:
            self.worker_crashes_fired += 1
        return crash


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[_ActiveInjection]:
    """Activate ``plan`` for the block; hooks are removed on exit.

    Yields the active injection whose counters
    (``solver_faults_fired``, ``worker_crashes_fired``) tests can assert
    on.  Activations do not nest.
    """
    active = _ActiveInjection(plan)
    set_solver_fault_hook(active.solver_hook)
    set_worker_fault_hook(active.worker_hook)
    try:
        yield active
    finally:
        set_solver_fault_hook(None)
        set_worker_fault_hook(None)


def plan_from_spec(spec: str) -> FaultPlan:
    """Parse a CLI fault spec into a :class:`FaultPlan`.

    The spec is comma-separated ``kind[@index]`` tokens with 1-based
    indices (default 1): ``solver@2`` fails the second solve's primary
    attempt, ``solver-fatal@1`` exhausts every attempt of the first
    solve, ``worker@3`` crashes the third dispatched sweep item.
    Example: ``"solver@1,worker@2"``.
    """
    solver = set()
    fatal = set()
    worker = set()
    targets = {"solver": solver, "solver-fatal": fatal, "worker": worker}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        kind, _, index_text = token.partition("@")
        if kind not in targets:
            known = ", ".join(sorted(targets))
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in spec {spec!r} "
                f"(known: {known})"
            )
        try:
            index = int(index_text) if index_text else 1
        except ValueError:
            raise ConfigurationError(
                f"bad fault index in token {token!r} (want kind@N)"
            ) from None
        if index < 1:
            raise ConfigurationError(
                f"fault index must be >= 1 in token {token!r}"
            )
        targets[kind].add(index)
    return FaultPlan(
        solver_failures=frozenset(solver),
        solver_fatal=frozenset(fatal),
        worker_crashes=frozenset(worker),
    )


def corrupt_checkpoint_file(path: str, mode: str = "truncate") -> None:
    """Deterministically damage a checkpoint item file.

    ``mode="truncate"`` keeps the first half of the file (a mid-write
    crash without the atomic-rename protection); ``mode="garbage"``
    overwrites the middle third with ``#`` bytes (bit rot that breaks the
    checksum while staying superficially file-shaped).  Either way the
    store must treat the item as missing and re-execute it.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if mode == "truncate":
        damaged = data[: len(data) // 2]
    elif mode == "garbage":
        third = len(data) // 3
        damaged = data[:third] + b"#" * third + data[2 * third :]
    else:
        raise ConfigurationError(
            f"unknown corruption mode {mode!r} (want truncate|garbage)"
        )
    with open(path, "wb") as handle:
        handle.write(damaged)
