"""repro — available bandwidth in multirate, multihop wireless networks.

A faithful reproduction of Chen, Zhai & Fang, *Available Bandwidth in
Multirate and Multihop Wireless Sensor Networks* (ICDCS 2009): the
rate-coupled independent-set/clique model, the Eq. 6 available-bandwidth
LP, the Eq. 9 upper bound, the Section 4 distributed estimators and QoS
routing metrics, plus the substrates (multirate PHY, interference models,
CSMA/CA simulator) they stand on.

Quickstart::

    from repro import scenario_two, available_path_bandwidth

    bundle = scenario_two()
    result = available_path_bandwidth(bundle.model, bundle.path)
    print(result.available_bandwidth)   # 16.2 — the paper's Section 5.1
"""

from repro.core import (
    LinkSchedule,
    PathBandwidthResult,
    RateClique,
    RateIndependentSet,
    ScheduleEntry,
    available_path_bandwidth,
    clique_upper_bound,
    enumerate_maximal_independent_sets,
    enumerate_maximal_rate_cliques,
    fixed_rate_cliques,
    hypothesis_min_clique_time,
    is_feasible,
    joint_admission_scale,
    lower_bound_from_subset,
    maximal_cliques_with_maximum_rates,
    min_airtime_schedule,
    required_airtime,
    solve_with_column_generation,
)
from repro.interference import (
    ConflictRule,
    DeclaredInterferenceModel,
    LinkRate,
    PhysicalInterferenceModel,
    ProtocolInterferenceModel,
)
from repro.net import (
    Link,
    Network,
    Node,
    Path,
    RandomTopologyConfig,
    random_topology,
)
from repro.phy import (
    IEEE80211A_PAPER_RATES,
    LogDistancePathLoss,
    RadioConfig,
    Rate,
    RateTable,
)
from repro.workloads import (
    Flow,
    paper_random_topology,
    random_flow_endpoints,
    scenario_one,
    scenario_two,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "available_path_bandwidth",
    "PathBandwidthResult",
    "min_airtime_schedule",
    "joint_admission_scale",
    "clique_upper_bound",
    "hypothesis_min_clique_time",
    "lower_bound_from_subset",
    "solve_with_column_generation",
    "is_feasible",
    "required_airtime",
    "enumerate_maximal_independent_sets",
    "enumerate_maximal_rate_cliques",
    "maximal_cliques_with_maximum_rates",
    "fixed_rate_cliques",
    "RateIndependentSet",
    "RateClique",
    "LinkSchedule",
    "ScheduleEntry",
    # interference
    "LinkRate",
    "PhysicalInterferenceModel",
    "ProtocolInterferenceModel",
    "DeclaredInterferenceModel",
    "ConflictRule",
    # net
    "Node",
    "Link",
    "Network",
    "Path",
    "random_topology",
    "RandomTopologyConfig",
    # phy
    "Rate",
    "RateTable",
    "RadioConfig",
    "LogDistancePathLoss",
    "IEEE80211A_PAPER_RATES",
    # workloads
    "Flow",
    "random_flow_endpoints",
    "scenario_one",
    "scenario_two",
    "paper_random_topology",
]
