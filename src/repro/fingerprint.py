"""Canonical, process-stable fingerprints of workloads and instances.

A fingerprint is a short hex digest of a *canonical* JSON rendering of a
value: dictionary keys sorted (and coerced to strings), tuples and lists
normalised to arrays, sets ordered by their own canonical encoding, and
floats rendered with ``repr`` (CPython's shortest round-trip form), so
the same value fingerprints identically in every process, on every
platform, in every session.  Two equal fingerprints therefore mean "the
same workload" — which is what lets the run-history differ
(:mod:`repro.obs.history`) decide whether two runs are comparable, and
what lets the serving layer (:mod:`repro.serve`) key cached solve
artifacts on a topology + background and trust a hit.

Domain helpers build the canonical description for the library's own
objects: :func:`network_fingerprint` (nodes, links, radio
parameterisation), :func:`model_fingerprint` (model type + network +
declared conflict rules), :func:`background_fingerprint` (per-flow link
sequences and demands) and :func:`path_fingerprint`.  They duck-type
rather than import the model layers, so this module sits below
everything and anything may import it.

Caveat: a :class:`~repro.interference.declared.ConflictRule` predicate
is an opaque callable; its fingerprint records *that* a rule is
rate-dependent, not the predicate's semantics.  Two declared models
differing only in predicate bodies collide — callers that need that
distinction (none in the library; the serving layer binds one model
instance per service) must add their own discriminator.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = [
    "canonical_json",
    "fingerprint",
    "args_fingerprint",
    "network_fingerprint",
    "model_fingerprint",
    "background_fingerprint",
    "path_fingerprint",
    "SHORT_LENGTH",
]

#: Hex digits kept by the short-form digest (matches the historical
#: ``obs.history.args_fingerprint`` width).
SHORT_LENGTH = 16


def _canonical(value: Any) -> Any:
    """``value`` as plain JSON-able types with deterministic ordering."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr is CPython's shortest round-trip rendering — stable across
        # processes and platforms; non-finite floats become tagged
        # strings so the encoding stays valid JSON.
        if math.isnan(value):
            return "float:nan"
        if math.isinf(value):
            return "float:inf" if value > 0 else "float:-inf"
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        rendered = [canonical_json(item) for item in value]
        return {"__set__": sorted(rendered)}
    if isinstance(value, dict):
        items = [
            (key if isinstance(key, str) else str(key), entry)
            for key, entry in value.items()
        ]
        return {key: _canonical(entry) for key, entry in sorted(items)}
    if isinstance(value, bytes):
        return value.hex()
    # Last resort, matching the historical ``default=str`` behaviour.
    return str(value)


def canonical_json(value: Any) -> str:
    """The canonical JSON rendering fingerprints digest.

    Deterministic in the value alone: key order, tuple-vs-list and
    process identity never leak in.
    """
    return json.dumps(
        _canonical(value), sort_keys=True, separators=(",", ":")
    )


def fingerprint(value: Any, length: Optional[int] = SHORT_LENGTH) -> str:
    """Hex digest of ``value``'s canonical JSON (sha256).

    ``length`` truncates the digest (default :data:`SHORT_LENGTH`);
    ``None`` keeps all 64 hex digits.
    """
    digest = hashlib.sha256(
        canonical_json(value).encode("utf-8")
    ).hexdigest()
    return digest if length is None else digest[:length]


def args_fingerprint(arguments: Dict[str, Any]) -> str:
    """Short stable digest of a run's effective arguments.

    Two records with equal fingerprints solved the same workload, so
    their counters are comparable; the history diff warns when they
    differ.  (Historically defined in :mod:`repro.obs.history`, which
    still re-exports it.)
    """
    return fingerprint(arguments)


# -- domain fingerprints -------------------------------------------------------


def _path_loss_description(path_loss: Any) -> Dict[str, Any]:
    data: Dict[str, Any] = {"type": type(path_loss).__name__}
    for name, value in sorted(vars(path_loss).items()):
        if not name.startswith("_") and isinstance(
            value, (int, float, str, bool)
        ):
            data[name] = value
    return data


def network_description(network: Any) -> Dict[str, Any]:
    """Canonical description of a :class:`~repro.net.topology.Network`.

    Covers everything the solvers consume: node ids and positions, link
    ids and endpoints, and the radio parameterisation (rate table, power,
    noise, carrier-sense range, path-loss model parameters).
    """
    radio = network.radio
    return {
        "nodes": [
            [node.node_id, node.x, node.y] for node in network.nodes
        ],
        "links": [
            [link.link_id, link.sender.node_id, link.receiver.node_id]
            for link in network.links
        ],
        "radio": {
            "tx_power_dbm": radio.tx_power_dbm,
            "noise_mw": radio.noise_mw,
            "carrier_sense_range_m": radio.carrier_sense_range_m,
            "path_loss": _path_loss_description(radio.path_loss),
            "rates": [
                [rate.mbps, rate.sinr_db, rate.range_m]
                for rate in radio.rate_table
            ],
        },
    }


def network_fingerprint(network: Any) -> str:
    """Short digest of :func:`network_description`."""
    return fingerprint(network_description(network))


def model_fingerprint(model: Any) -> str:
    """Digest of an interference model: type, network, declared rules.

    Rate-dependent rule *predicates* are recorded only as a flag (see
    the module docstring's caveat).
    """
    data: Dict[str, Any] = {
        "type": type(model).__name__,
        "network": network_description(model.network),
    }
    rules = getattr(model, "rules", None)
    if rules is not None:
        data["rules"] = sorted(
            [
                rule.link_a,
                rule.link_b,
                "rate-dependent" if rule.is_rate_dependent else "always",
            ]
            for rule in rules
        )
    return fingerprint(data)


def path_fingerprint(path: Any) -> str:
    """Digest of a path: its ordered link ids."""
    return fingerprint([link.link_id for link in path])


def background_fingerprint(
    background: Iterable[Tuple[Any, float]],
) -> str:
    """Digest of background traffic: per-flow link sequences + demands.

    Order-sensitive — the Eq. 6 LP's rows follow the background's link
    discovery order, so reordered flows are a different (if equivalent)
    workload.
    """
    return fingerprint(
        [
            [[link.link_id for link in path], demand]
            for path, demand in background
        ]
    )
