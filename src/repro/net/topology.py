"""The :class:`Network` container.

A network owns nodes, directed links and the shared radio configuration.
It offers the geometric queries the interference layer needs (distances,
hearing sets) plus conversions to :mod:`networkx` graphs for routing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.errors import LinkError, TopologyError
from repro.net.link import Link
from repro.net.node import Node
from repro.phy.radio import RadioConfig
from repro.phy.rates import Rate

__all__ = ["Network"]


class Network:
    """A multirate wireless network.

    Args:
        radio: Shared radio configuration (rate table, power, channel).
            Required even for abstract topologies — the rate table is what
            the combinatorial layer enumerates over.
        name: Optional label used in reports.
    """

    def __init__(self, radio: RadioConfig, name: str = "network"):
        self.radio = radio
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[str, Link] = {}
        self._links_by_pair: Dict[Tuple[str, str], Link] = {}

    # -- construction ----------------------------------------------------------

    def add_node(
        self,
        node_id: str,
        x: Optional[float] = None,
        y: Optional[float] = None,
    ) -> Node:
        """Create and register a node; ids must be unique."""
        if node_id in self._nodes:
            raise TopologyError(f"duplicate node id {node_id!r}")
        node = Node(node_id=node_id, x=x, y=y)
        self._nodes[node_id] = node
        return node

    def add_link(
        self,
        sender_id: str,
        receiver_id: str,
        link_id: Optional[str] = None,
    ) -> Link:
        """Create and register a directed link between existing nodes.

        For geometric networks the link must be within the slowest rate's
        transmission range — a longer link supports no rate at all and would
        poison every downstream computation.
        """
        sender = self.node(sender_id)
        receiver = self.node(receiver_id)
        if (sender_id, receiver_id) in self._links_by_pair:
            raise LinkError(
                f"link {sender_id!r}->{receiver_id!r} already exists"
            )
        if link_id is None:
            link_id = f"{sender_id}->{receiver_id}"
        if link_id in self._links:
            raise LinkError(f"duplicate link id {link_id!r}")
        link = Link(link_id=link_id, sender=sender, receiver=receiver)
        if sender.has_position and receiver.has_position:
            if link.length_m > self.radio.rate_table.max_range_m:
                raise LinkError(
                    f"link {link_id!r} is {link.length_m:.1f} m long, beyond "
                    f"the maximum transmission range "
                    f"{self.radio.rate_table.max_range_m:g} m"
                )
        self._links[link_id] = link
        self._links_by_pair[(sender_id, receiver_id)] = link
        return link

    # -- lookups ----------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def links(self) -> Tuple[Link, ...]:
        return tuple(self._links.values())

    @property
    def is_geometric(self) -> bool:
        """True when every node has coordinates."""
        return all(node.has_position for node in self._nodes.values())

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def link(self, link_id: str) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(f"unknown link {link_id!r}") from None

    def link_between(self, sender_id: str, receiver_id: str) -> Link:
        try:
            return self._links_by_pair[(sender_id, receiver_id)]
        except KeyError:
            raise TopologyError(
                f"no link {sender_id!r}->{receiver_id!r}"
            ) from None

    def has_link(self, sender_id: str, receiver_id: str) -> bool:
        return (sender_id, receiver_id) in self._links_by_pair

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    # -- geometric queries --------------------------------------------------------

    def distance(self, node_a: str, node_b: str) -> float:
        return self.node(node_a).distance_to(self.node(node_b))

    def max_standalone_rate(self, link: Link) -> Optional[Rate]:
        """Fastest rate ``link`` supports when transmitting alone (Eq. 1)."""
        return self.radio.max_standalone_rate(link.length_m)

    def nodes_within(self, center: Node, radius_m: float) -> List[Node]:
        """All *other* nodes within ``radius_m`` of ``center``."""
        return [
            node
            for node in self._nodes.values()
            if node.node_id != center.node_id
            and center.distance_to(node) <= radius_m
        ]

    def hearing_set(self, node_id: str) -> List[Node]:
        """Nodes whose transmissions ``node_id`` senses (carrier sensing)."""
        return self.nodes_within(self.node(node_id), self.radio.carrier_sense_range_m)

    def can_hear(self, listener_id: str, transmitter_id: str) -> bool:
        """Whether ``listener_id`` senses a transmission by ``transmitter_id``."""
        if listener_id == transmitter_id:
            return True
        return self.radio.hears(self.distance(listener_id, transmitter_id))

    # -- graph views -----------------------------------------------------------------

    def to_digraph(self) -> nx.DiGraph:
        """Directed graph of the registered links.

        Edge attributes: ``link`` (the :class:`Link`) and, on geometric
        networks, ``rate_mbps``/``length_m`` from the link's maximum
        standalone rate.  This is the routing substrate.
        """
        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(node.node_id, node=node)
        for link in self._links.values():
            attrs = {"link": link}
            if link.sender.has_position and link.receiver.has_position:
                rate = self.max_standalone_rate(link)
                attrs["length_m"] = link.length_m
                attrs["rate_mbps"] = rate.mbps if rate is not None else 0.0
            graph.add_edge(link.sender.node_id, link.receiver.node_id, **attrs)
        return graph

    def build_links_within_range(self) -> int:
        """Register links for every ordered node pair in transmission range.

        Convenience for geometric topologies: after placing nodes, this adds
        a directed link wherever the slowest rate reaches.  Returns the
        number of links added; pairs that already have a link are skipped.
        """
        if not self.is_geometric:
            raise TopologyError("build_links_within_range needs coordinates")
        added = 0
        max_range = self.radio.rate_table.max_range_m
        node_list = list(self._nodes.values())
        # Vectorized prefilter with a one-ulp slack, then the exact scalar
        # distance check: numpy's hypot can differ from ``math.hypot`` in
        # the last ulp, so the slack keeps borderline pairs in the candidate
        # set and the scalar confirmation keeps the link set byte-identical
        # to the pure-Python double loop at any scale.
        xs = np.array([node.x for node in node_list], dtype=float)
        ys = np.array([node.y for node in node_list], dtype=float)
        near = (
            np.hypot(xs[:, None] - xs[None, :], ys[:, None] - ys[None, :])
            <= max_range * (1.0 + 1e-9)
        )
        for i, j in zip(*np.nonzero(near)):
            sender = node_list[i]
            receiver = node_list[j]
            if sender.node_id == receiver.node_id:
                continue
            if self.has_link(sender.node_id, receiver.node_id):
                continue
            if sender.distance_to(receiver) <= max_range:
                self.add_link(sender.node_id, receiver.node_id)
                added += 1
        return added

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network({self.name!r}, {len(self._nodes)} nodes, "
            f"{len(self._links)} links)"
        )
