"""Network substrate: nodes, directed links, topologies and paths.

Two kinds of topology coexist:

* **Geometric** networks, where every node has coordinates and the radio's
  path-loss model decides link rates and interference (the paper's random
  topology, Section 5.2);
* **Abstract** networks, where nodes have no coordinates and the conflict
  structure is declared explicitly (the paper's Scenario I and II, whose
  conflict relations are given, not derived).

Both are represented by :class:`Network`; geometric queries raise a clear
error on abstract networks.
"""

from repro.net.generators import (
    chain_topology,
    grid_topology,
    ring_topology,
)
from repro.net.io import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.net.link import Link
from repro.net.node import Node
from repro.net.path import Path
from repro.net.random_topology import RandomTopologyConfig, random_topology
from repro.net.topology import Network

__all__ = [
    "Node",
    "Link",
    "Network",
    "Path",
    "RandomTopologyConfig",
    "random_topology",
    "chain_topology",
    "grid_topology",
    "ring_topology",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
]
