"""Random topology generation (the paper's Section 5.2 setup).

The paper places 30 nodes uniformly at random in a 400 m × 600 m rectangle,
uses the four 802.11a rates with propagation exponent 4, and registers a
link wherever two nodes are within transmission range of the slowest rate.
:func:`random_topology` reproduces that construction for any seed and can
optionally resample until the topology is strongly connected (flows between
arbitrary endpoints then always have some route).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigurationError, TopologyError
from repro.net.topology import Network
from repro.phy.radio import RadioConfig
from repro.rng import SeedLike, make_rng

__all__ = ["RandomTopologyConfig", "random_topology"]


@dataclass(frozen=True)
class RandomTopologyConfig:
    """Parameters of the random placement.

    Defaults are the paper's: 30 nodes in 400 m × 600 m.
    """

    n_nodes: int = 30
    width_m: float = 400.0
    height_m: float = 600.0
    require_connected: bool = True
    max_attempts: int = 200

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError("need at least two nodes")
        if self.width_m <= 0 or self.height_m <= 0:
            raise ConfigurationError("area dimensions must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")


def random_topology(
    radio: RadioConfig,
    config: RandomTopologyConfig = RandomTopologyConfig(),
    seed: SeedLike = None,
    name: str = "random",
) -> Network:
    """Generate a random geometric network.

    Nodes are named ``n0`` ... ``n{N-1}``.  When
    ``config.require_connected`` is set, placements whose link graph is not
    strongly connected are redrawn (up to ``config.max_attempts`` times)
    from the same random stream, so results stay reproducible per seed.

    Raises:
        TopologyError: if no connected placement is found within the
            attempt budget — a sign the area is too large for the node
            count and radio range, which is better surfaced than silently
            returning a partitioned network.
    """
    rng = make_rng(seed)
    for _ in range(config.max_attempts):
        network = Network(radio, name=name)
        for index in range(config.n_nodes):
            network.add_node(
                f"n{index}",
                x=float(rng.uniform(0.0, config.width_m)),
                y=float(rng.uniform(0.0, config.height_m)),
            )
        network.build_links_within_range()
        if not config.require_connected:
            return network
        if nx.is_strongly_connected(network.to_digraph()):
            return network
    raise TopologyError(
        f"no strongly connected placement of {config.n_nodes} nodes in "
        f"{config.width_m:g}x{config.height_m:g} m after "
        f"{config.max_attempts} attempts; enlarge the node count or range"
    )
