"""Paths: ordered sequences of links from a source to a destination."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.errors import PathError
from repro.net.link import Link
from repro.net.node import Node

__all__ = ["Path"]


class Path:
    """An ordered, contiguous, loop-free sequence of links.

    Invariants checked at construction:

    * at least one link;
    * consecutive links chain: ``links[i].receiver == links[i+1].sender``;
    * no node repeats (simple path), which every routing algorithm in the
      library produces and the clique machinery assumes.
    """

    def __init__(self, links: Iterable[Link]):
        link_list: Tuple[Link, ...] = tuple(links)
        if not link_list:
            raise PathError("a path needs at least one link")
        for left, right in zip(link_list, link_list[1:]):
            if left.receiver.node_id != right.sender.node_id:
                raise PathError(
                    f"links {left.link_id!r} and {right.link_id!r} do not "
                    "chain: receiver of the former differs from sender of "
                    "the latter"
                )
        node_ids = [link_list[0].sender.node_id]
        node_ids.extend(link.receiver.node_id for link in link_list)
        if len(set(node_ids)) != len(node_ids):
            raise PathError(f"path visits a node twice: {node_ids}")
        self._links = link_list

    # -- container protocol ------------------------------------------------------

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    def __len__(self) -> int:
        return len(self._links)

    def __getitem__(self, index: int) -> Link:
        return self._links[index]

    def __contains__(self, link: Link) -> bool:
        return link in self._links

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._links == other._links

    def __hash__(self) -> int:
        return hash(self._links)

    # -- accessors ----------------------------------------------------------------

    @property
    def links(self) -> Tuple[Link, ...]:
        return self._links

    @property
    def source(self) -> Node:
        return self._links[0].sender

    @property
    def destination(self) -> Node:
        return self._links[-1].receiver

    @property
    def hop_count(self) -> int:
        return len(self._links)

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes visited, source first."""
        result: List[Node] = [self._links[0].sender]
        result.extend(link.receiver for link in self._links)
        return tuple(result)

    def subpath(self, start: int, stop: int) -> "Path":
        """Links ``start``..``stop-1`` as a new path (list-slice semantics)."""
        return Path(self._links[start:stop])

    def prefixes(self) -> Iterator["Path"]:
        """All prefixes, shortest first — what each intermediate node sees
        when estimating source-to-self bandwidth (Section 4)."""
        for end in range(1, len(self._links) + 1):
            yield Path(self._links[:end])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "->".join(node.node_id for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Path({self})"
