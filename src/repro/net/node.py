"""Network nodes."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import TopologyError

__all__ = ["Node"]


@dataclass(frozen=True)
class Node:
    """A wireless node, optionally placed in the plane.

    Attributes:
        node_id: Unique identifier within a :class:`~repro.net.Network`.
        x, y: Coordinates in metres, or ``None`` for abstract topologies
            (Scenario I/II declare conflicts instead of geometry).
    """

    node_id: str
    x: Optional[float] = None
    y: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.x is None) != (self.y is None):
            raise TopologyError(
                f"node {self.node_id!r}: give both coordinates or neither"
            )

    @property
    def has_position(self) -> bool:
        return self.x is not None

    def distance_to(self, other: "Node") -> float:
        """Euclidean distance in metres; requires both nodes placed."""
        if not self.has_position or not other.has_position:
            raise TopologyError(
                f"distance between {self.node_id!r} and {other.node_id!r} "
                "is undefined: abstract nodes have no coordinates"
            )
        return math.hypot(self.x - other.x, self.y - other.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.node_id
