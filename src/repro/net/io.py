"""Topology serialisation: Network ↔ plain dict / JSON.

Experiments that take hours to pick a placement (seed scans) need to pin
the exact topology; serialising nodes, links and the radio
parameterisation makes a placement a reviewable artifact rather than a
(seed, library-version) pair.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import TopologyError
from repro.net.topology import Network
from repro.phy.propagation import LogDistancePathLoss
from repro.phy.radio import RadioConfig
from repro.phy.rates import Rate, RateTable

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

_FORMAT_VERSION = 1


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialisable description of a network.

    Only log-distance path-loss models round-trip (they cover the paper
    and every bundled experiment); other models raise.
    """
    radio = network.radio
    path_loss = radio.path_loss
    if not isinstance(path_loss, LogDistancePathLoss):
        raise TopologyError(
            "only log-distance path-loss models are serialisable, got "
            f"{type(path_loss).__name__}"
        )
    return {
        "format": _FORMAT_VERSION,
        "name": network.name,
        "radio": {
            "tx_power_dbm": radio.tx_power_dbm,
            "noise_mw": radio.noise_mw,
            "carrier_sense_range_m": radio.carrier_sense_range_m,
            "path_loss": {
                "exponent": path_loss.exponent,
                "reference_gain": path_loss.reference_gain,
                "reference_distance_m": path_loss.reference_distance_m,
            },
            "rates": [
                {
                    "mbps": rate.mbps,
                    "sinr_db": rate.sinr_db,
                    "range_m": rate.range_m,
                }
                for rate in radio.rate_table
            ],
        },
        "nodes": [
            {"id": node.node_id, "x": node.x, "y": node.y}
            for node in network.nodes
        ],
        "links": [
            {
                "id": link.link_id,
                "sender": link.sender.node_id,
                "receiver": link.receiver.node_id,
            }
            for link in network.links
        ],
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a network serialised by :func:`network_to_dict`."""
    if data.get("format") != _FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format {data.get('format')!r}"
        )
    radio_data = data["radio"]
    rate_table = RateTable(
        Rate(
            mbps=entry["mbps"],
            sinr_db=entry["sinr_db"],
            range_m=entry["range_m"],
        )
        for entry in radio_data["rates"]
    )
    loss = radio_data["path_loss"]
    radio = RadioConfig(
        rate_table=rate_table,
        path_loss=LogDistancePathLoss(
            exponent=loss["exponent"],
            reference_gain=loss["reference_gain"],
            reference_distance_m=loss["reference_distance_m"],
        ),
        tx_power_dbm=radio_data["tx_power_dbm"],
        noise_mw=radio_data["noise_mw"],
        carrier_sense_range_m=radio_data["carrier_sense_range_m"],
    )
    network = Network(radio, name=data.get("name", "network"))
    for node in data["nodes"]:
        network.add_node(node["id"], x=node["x"], y=node["y"])
    for link in data["links"]:
        network.add_link(
            link["sender"], link["receiver"], link_id=link["id"]
        )
    return network


def save_network(network: Network, path: str) -> None:
    """Write the network to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(network_to_dict(network), handle, indent=2, sort_keys=True)


def load_network(path: str) -> Network:
    """Read a network written by :func:`save_network`."""
    with open(path, "r", encoding="utf-8") as handle:
        return network_from_dict(json.load(handle))
