"""Canonical topology generators: chains, grids, rings.

The evaluation literature (including the paper's references [1], [10])
leans on a few standard shapes; these helpers build them with the
library's radio defaults so examples, tests and parameter sweeps stop
hand-placing nodes.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.topology import Network
from repro.phy.radio import RadioConfig

__all__ = [
    "chain_topology",
    "grid_topology",
    "ring_topology",
    "scatter_topology",
]


def _radio_or_default(radio: Optional[RadioConfig]) -> RadioConfig:
    return radio if radio is not None else RadioConfig()


def chain_topology(
    n_nodes: int,
    spacing_m: float,
    radio: Optional[RadioConfig] = None,
    name: str = "chain",
) -> Network:
    """``n_nodes`` on a line, ``spacing_m`` apart, all in-range pairs linked.

    The workhorse of multihop analysis: with the paper's radio, spacing
    below 59 m gives 54 Mbps hops, 60–79 m gives 36, and so on.
    """
    if n_nodes < 2:
        raise ConfigurationError("a chain needs at least two nodes")
    if spacing_m <= 0:
        raise ConfigurationError("spacing must be positive")
    network = Network(_radio_or_default(radio), name=name)
    for index in range(n_nodes):
        network.add_node(f"n{index}", x=spacing_m * index, y=0.0)
    network.build_links_within_range()
    return network


def grid_topology(
    rows: int,
    columns: int,
    spacing_m: float,
    radio: Optional[RadioConfig] = None,
    name: str = "grid",
) -> Network:
    """A ``rows`` × ``columns`` lattice with ``spacing_m`` pitch.

    Node ids are ``r{row}c{column}``.  Links join every pair within the
    slowest rate's range, so diagonal and multi-pitch links appear when
    the pitch allows.
    """
    if rows < 1 or columns < 1:
        raise ConfigurationError("grid needs positive dimensions")
    if rows * columns < 2:
        raise ConfigurationError("grid needs at least two nodes")
    if spacing_m <= 0:
        raise ConfigurationError("spacing must be positive")
    network = Network(_radio_or_default(radio), name=name)
    for row in range(rows):
        for column in range(columns):
            network.add_node(
                f"r{row}c{column}",
                x=column * spacing_m,
                y=row * spacing_m,
            )
    network.build_links_within_range()
    return network


def ring_topology(
    n_nodes: int,
    radius_m: float,
    radio: Optional[RadioConfig] = None,
    name: str = "ring",
) -> Network:
    """``n_nodes`` equally spaced on a circle of ``radius_m``.

    Useful for studying spatial reuse: opposite arcs of a large ring can
    transmit concurrently while neighbours conflict.
    """
    if n_nodes < 3:
        raise ConfigurationError("a ring needs at least three nodes")
    if radius_m <= 0:
        raise ConfigurationError("radius must be positive")
    network = Network(_radio_or_default(radio), name=name)
    for index in range(n_nodes):
        angle = 2.0 * math.pi * index / n_nodes
        network.add_node(
            f"n{index}",
            x=radius_m * math.cos(angle),
            y=radius_m * math.sin(angle),
        )
    network.build_links_within_range()
    return network


def scatter_topology(
    n_nodes: int,
    width_m: float,
    height_m: float,
    seed: int = 0,
    radio: Optional[RadioConfig] = None,
    name: str = "scatter",
) -> Network:
    """``n_nodes`` placed uniformly at random in a ``width × height`` field.

    The large-topology workhorse of the scaling layer: unlike
    :func:`~repro.net.random_topology.random_topology` it never resamples
    for connectivity (a 1000-node field would resample forever or never),
    so generation cost is one placement plus the vectorized link build.
    Deterministic in ``seed``.
    """
    if n_nodes < 2:
        raise ConfigurationError("a scatter needs at least two nodes")
    if width_m <= 0 or height_m <= 0:
        raise ConfigurationError("field dimensions must be positive")
    rng = random.Random(f"repro-scatter:{seed}")
    network = Network(_radio_or_default(radio), name=name)
    for index in range(n_nodes):
        network.add_node(
            f"n{index}",
            x=rng.uniform(0.0, width_m),
            y=rng.uniform(0.0, height_m),
        )
    network.build_links_within_range()
    return network
