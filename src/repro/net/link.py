"""Directed wireless links."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LinkError
from repro.net.node import Node

__all__ = ["Link"]


@dataclass(frozen=True)
class Link:
    """A directed link from ``sender`` to ``receiver``.

    Links are directed because interference is asymmetric: what matters is
    the SINR at the *receiver*, and the carrier a node senses depends on who
    *transmits*.  Identity (hashing/equality) is by ``link_id``; a
    :class:`~repro.net.Network` guarantees ids are unique and that at most
    one link exists per ordered node pair.
    """

    link_id: str
    sender: Node
    receiver: Node

    def __post_init__(self) -> None:
        if self.sender.node_id == self.receiver.node_id:
            raise LinkError(f"link {self.link_id!r} is a self loop")

    @property
    def length_m(self) -> float:
        """Sender→receiver distance; geometric networks only."""
        return self.sender.distance_to(self.receiver)

    @property
    def endpoints(self) -> frozenset:
        """The two endpoint node ids, order-free (for half-duplex checks)."""
        return frozenset((self.sender.node_id, self.receiver.node_id))

    def shares_node_with(self, other: "Link") -> bool:
        """True when the links have a common endpoint.

        Two such links can never transmit concurrently: radios are
        half-duplex and a node cannot serve two links in the same slot.
        """
        return bool(self.endpoints & other.endpoints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Link):
            return NotImplemented
        return self.link_id == other.link_id

    def __hash__(self) -> int:
        return hash(self.link_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.link_id}({self.sender}->{self.receiver})"
