"""Per-query flight recorder: bounded slow-query log for the service.

Aggregate metrics say the p99 moved; they cannot say *which* query
moved it or why.  The :class:`FlightRecorder` keeps the full causal
record — cache outcome per level, columns enumerated, LP iterations,
warm vs cold, plus the top binding demand row and its shadow price
(*where* the query contended, not just how long it took) — for the K
slowest queries seen, in O(K) memory
regardless of stream length (a min-heap ordered by latency: a new
record evicts the fastest resident only when it is slower).

Surfaces: ``repro serve --slow-log`` prints :func:`format_slow_log`,
and ``--trace-json`` embeds :meth:`FlightRecorder.to_dict` under
``slow_queries``.  Recording is a couple of comparisons and at most one
heap push per query, well inside the serve overhead budget pinned by
``tests/test_serve_telemetry.py``.
"""

from __future__ import annotations

import heapq
import threading
from typing import Any, Dict, List

__all__ = ["FlightRecorder", "DEFAULT_SLOW_LOG_SIZE", "format_slow_log"]

#: Slow-log capacity unless ``AdmissionService(slow_log=...)`` says
#: otherwise — enough to see a pattern, small enough to embed in JSON.
DEFAULT_SLOW_LOG_SIZE = 16


class FlightRecorder:
    """Top-K-by-latency store of per-query flight records.

    Thread-safe: ``BatchSession`` workers record concurrently.  Records
    are arbitrary JSON-able dicts carrying a ``latency_seconds`` key;
    ties break by arrival order (earlier record wins residence), so a
    single-threaded run produces a deterministic log.
    """

    def __init__(self, capacity: int = DEFAULT_SLOW_LOG_SIZE):
        if capacity < 1:
            raise ValueError(f"slow-log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.records_seen = 0
        self._heap: List[Any] = []  # (latency, -seq, record) min-heap
        self._lock = threading.Lock()

    def record(self, record: Dict[str, Any]) -> None:
        """Offer one flight record; kept only if among the K slowest."""
        latency = float(record.get("latency_seconds", 0.0))
        with self._lock:
            self.records_seen += 1
            entry = (latency, -self.records_seen, record)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif entry > self._heap[0]:
                heapq.heapreplace(self._heap, entry)

    def slow_queries(self) -> List[Dict[str, Any]]:
        """Resident records, slowest first."""
        with self._lock:
            entries = sorted(self._heap, reverse=True)
        return [record for _, _, record in entries]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view: capacity, totals and the resident records."""
        records = self.slow_queries()
        return {
            "capacity": self.capacity,
            "records_seen": self.records_seen,
            "records_kept": len(records),
            "records": records,
        }


def format_slow_log(recorder: FlightRecorder) -> str:
    """Plain-text slow-query table (the ``--slow-log`` output)."""
    records = recorder.slow_queries()
    header = (
        f"slow queries: {len(records)} kept of {recorder.records_seen} seen "
        f"(capacity {recorder.capacity})"
    )
    if not records:
        return header
    lines = [
        header,
        f"  {'latency':>12}  {'id':<12}  {'state':<6}  "
        f"{'result':<6}  {'cols$':<6}  {'lp$':<7}  "
        f"{'columns':>7}  {'lp iters':>8}  {'warm':<4}  "
        f"{'bottleneck':<14}  price",
    ]
    for record in records:
        bottleneck = record.get("bottleneck_link") or "-"
        price = record.get("bottleneck_price", 0.0) or 0.0
        lines.append(
            f"  {record.get('latency_seconds', 0.0) * 1e3:>9.3f} ms  "
            f"{str(record.get('query_id', '?')):<12}  "
            f"{str(record.get('cache_state', '?')):<6}  "
            f"{str(record.get('result_cache', '?')):<6}  "
            f"{str(record.get('columns_cache', '?')):<6}  "
            f"{str(record.get('lp_cache', '?')):<7}  "
            f"{record.get('columns', 0):>7}  "
            f"{record.get('lp_iterations', 0):>8}  "
            f"{'yes' if record.get('lp_warm_start') else 'no':<4}  "
            f"{str(bottleneck):<14}  "
            f"{price:.4f}"
        )
    return "\n".join(lines)
