"""Admission-query serving layer: caches, warm starts, batching.

The stateless solver core answers one Eq. 6 question per call; this
package turns it into a query engine.  :class:`AdmissionService` binds a
topology, interference model and background mix, then answers candidate
(path, demand) queries out of fingerprint-keyed LRU caches
(:class:`SolveCache`) — enumeration artifacts, warm-startable master
LPs, memoised results — and :class:`BatchSession` amortizes a whole
query batch so enumeration runs once per distinct link union.
:class:`OnlineAdmissionController` closes the loop for *streaming*
workloads: it consumes churn events (arrivals, departures, node
down/up), keeps the carried-flow set itself, and re-solves each arrival
incrementally against warm per-union master LPs while staying
byte-identical to a cold Eq. 6 solve.  The CLI front ends are
``repro serve --queries queries.jsonl`` and ``repro serve --online``.

Both engines take ``explain=True`` (CLI ``--explain``) to attach a
:class:`~repro.obs.explain.Explanation` — dual certificate, binding
cliques, crowd-out attribution — to every decision; the flight
recorder's slow log names each query's top binding link either way.

Cached answers are exactly the cold solver's answers: every cache is
keyed on the same link universe the cold path enumerates over, and the
warm-start path assembles the identical program (see
:mod:`repro.serve.service`).
"""

from repro.serve.cache import SolveCache
from repro.serve.flight import (
    DEFAULT_SLOW_LOG_SIZE,
    FlightRecorder,
    format_slow_log,
)
from repro.serve.io import (
    decision_to_dict,
    load_background,
    load_queries,
    online_decision_from_dict,
    online_decision_to_dict,
    path_from_nodes,
    summarize_decisions,
    summarize_online_decisions,
)
from repro.serve.online import (
    OnlineAdmissionController,
    OnlineDecision,
    run_online_session,
)
from repro.serve.service import (
    AdmissionDecision,
    AdmissionQuery,
    AdmissionService,
    BatchSession,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionQuery",
    "AdmissionService",
    "BatchSession",
    "OnlineAdmissionController",
    "OnlineDecision",
    "run_online_session",
    "SolveCache",
    "FlightRecorder",
    "DEFAULT_SLOW_LOG_SIZE",
    "format_slow_log",
    "decision_to_dict",
    "load_background",
    "load_queries",
    "online_decision_from_dict",
    "online_decision_to_dict",
    "path_from_nodes",
    "summarize_decisions",
    "summarize_online_decisions",
]
