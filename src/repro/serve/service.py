"""Admission-query serving: cached enumeration, warm master LPs, batching.

A deployed estimator answers "can this path sustain rate r given the
background?" thousands of times over the *same* topology, and the
expensive parts of each answer — the interference kernel, the maximal
independent sets, the assembled Eq. 6 master LP — depend only on the
link universe, not on the query.  :class:`AdmissionService` exploits
that: artifacts are cached in LRU :class:`~repro.serve.cache.SolveCache`
stores keyed by the query's *link union* (the paper's ``P``: background
links ∪ candidate-path links, the exact universe the cold solver
enumerates over, so a cache hit is answer-preserving by construction),
and a repeat union warm-starts the cached master LP by rewriting its
``f`` column (:meth:`~repro.core.lp.LinearProgram.set_column`) instead
of rebuilding the program.

Three cache levels, cheapest hit last:

``enum``
    link-union → enumerated LP columns (the dominant cost);
``master``
    link-union → solved master LP, retargetable at a new path;
``result``
    (link-union, path) → available bandwidth, a pure lookup.

:class:`BatchSession` runs a batch of queries grouped by link union so
enumeration happens once per fingerprint even when the LRU caches are
smaller than the batch's working set, and orders same-path queries
consecutively to ride the LP solution cache.  Per-query spans,
``serve.*`` counters and the ``serve.latency_seconds`` /
``serve.bandwidth_mbps`` histograms land on the ambient
:mod:`repro.obs` recorder; each query additionally leaves a flight
record — per-cache-level outcomes, columns enumerated, LP iterations,
warm vs cold — on the service's bounded
:class:`~repro.serve.flight.FlightRecorder` slow-query log.

Thread-safety: the caches lock internally and each master LP carries its
own lock, so ``submit`` may be called from several threads; the
process-global obs recorder's *span stack* is not thread-safe, so
threaded batches (``workers > 1``) skip span recording and keep only
counters, which the locks serialize.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bandwidth import (
    _collect_links,
    build_path_bandwidth_lp,
    link_demands_from_paths,
    path_bandwidth_from_solution,
)
from repro.core.independent_sets import (
    RateIndependentSet,
    enumerate_maximal_independent_sets,
)
from repro.core.lp import LinearProgram
from repro.fingerprint import (
    background_fingerprint,
    fingerprint,
    model_fingerprint,
)
from repro.interference.base import InterferenceModel
from repro.net.link import Link
from repro.net.path import Path
from repro.obs import get_recorder
from repro.obs.explain import (
    Explanation,
    explain_solution,
    top_binding_link,
)
from repro.serve.cache import SolveCache
from repro.serve.flight import DEFAULT_SLOW_LOG_SIZE, FlightRecorder

__all__ = [
    "AdmissionQuery",
    "AdmissionDecision",
    "AdmissionService",
    "BatchSession",
]


@dataclass(frozen=True)
class AdmissionQuery:
    """One admission question: can ``path`` sustain ``demand_mbps``?"""

    query_id: str
    path: Path
    demand_mbps: float


@dataclass(frozen=True)
class AdmissionDecision:
    """The service's answer to one :class:`AdmissionQuery`.

    ``cache_state`` records how the answer was produced: ``"cold"``
    (enumeration + LP build), ``"warm"`` (cached master LP, possibly
    retargeted at the query path) or ``"result"`` (memoised bandwidth,
    no solve at all).  All three produce identical numbers — the state
    only says what it cost.
    """

    query_id: str
    admitted: bool
    available_bandwidth_mbps: float
    demand_mbps: float
    #: Fingerprint of (model, background, link union) — the cache locus
    #: this query solved under; equal fingerprints shared all artifacts.
    fingerprint: str
    cache_state: str
    latency_seconds: float
    #: Flight-record id: batch submissions derive it from the batch
    #: position (deterministic), standalone submissions draw from a
    #: service-wide sequence.
    trace_id: Optional[str] = None
    #: Per-cache-level outcomes (``"hit"`` / ``"miss"`` / ``"skipped"``)
    #: behind ``cache_state``: a ``result`` hit skips the other levels,
    #: a ``master`` (``lp_cache``) hit skips enumeration.
    result_cache: str = "miss"
    columns_cache: str = "skipped"
    lp_cache: str = "skipped"
    #: Decision provenance (:class:`~repro.obs.explain.Explanation`):
    #: binding cliques, crowd-out attribution and the dual certificate.
    #: Populated only when the service was built with ``explain=True``.
    explanation: Optional[Explanation] = None


class _QueryOutcome:
    """Everything one ``_available_bandwidth`` call learned.

    The answer (``bandwidth``) plus its causal record — which cache
    level answered, how many columns the program carried, whether the
    LP was retargeted and how many iterations the solve took — which
    ``submit`` folds into the decision and the flight record.
    """

    __slots__ = (
        "fingerprint",
        "bandwidth",
        "cache_state",
        "result_cache",
        "columns_cache",
        "lp_cache",
        "columns",
        "lp_warm_start",
        "lp_iterations",
        "bottleneck",
        "explanation",
    )

    def __init__(self, fingerprint: str):
        self.fingerprint = fingerprint
        self.bandwidth = 0.0
        self.cache_state = "cold"
        self.result_cache = "miss"
        self.columns_cache = "skipped"
        self.lp_cache = "skipped"
        self.columns = 0
        self.lp_warm_start = False
        self.lp_iterations = 0
        #: ``(link_id, shadow_price)`` of the top binding demand row, or
        #: ``None`` — always recorded, so the slow log can name where a
        #: query contended even with explanations off.
        self.bottleneck: Optional[Tuple[str, float]] = None
        self.explanation: Optional[Explanation] = None


class _MasterState:
    """A cached Eq. 6 master LP, retargetable at a new candidate path."""

    __slots__ = ("lp", "f_var", "lambda_vars", "columns", "path_key", "lock")

    def __init__(
        self,
        lp: LinearProgram,
        f_var: str,
        lambda_vars: List[str],
        columns: List[RateIndependentSet],
        path_key: Tuple[str, ...],
    ):
        self.lp = lp
        self.f_var = f_var
        self.lambda_vars = lambda_vars
        self.columns = columns
        self.path_key = path_key
        self.lock = threading.Lock()


class AdmissionService:
    """Batch/async admission-query engine over one (model, background).

    The service binds an interference model and a background traffic mix
    at construction; queries then vary only the candidate path and
    demand, which is exactly the state the caches amortize.  Answers are
    bit-identical to :func:`~repro.core.bandwidth.available_path_bandwidth`
    on the same instance (the cold path and the warm path assemble the
    same program; ``repro.verify``'s oracle cross-checks this in the
    test suite).
    """

    def __init__(
        self,
        model: InterferenceModel,
        background: Sequence[Tuple[Path, float]] = (),
        max_sets: Optional[int] = None,
        tolerance: float = 1e-6,
        enum_capacity: int = 64,
        master_capacity: int = 64,
        result_capacity: int = 4096,
        slow_log: int = DEFAULT_SLOW_LOG_SIZE,
        explain: bool = False,
    ):
        self.model = model
        self.network = model.network
        self.background = list(background)
        self.max_sets = max_sets
        self.tolerance = tolerance
        #: With ``explain=True`` every decision carries an
        #: :class:`~repro.obs.explain.Explanation` (certificate, binding
        #: cliques, crowd-out); off by default — the hot path then adds
        #: only the O(rows) bottleneck scan for the flight recorder.
        self.explain = explain
        self._demands = link_demands_from_paths(self.background)
        self._model_fp = model_fingerprint(model)
        self._background_fp = background_fingerprint(self.background)
        self.enum_cache = SolveCache(enum_capacity, "enum")
        self.master_cache = SolveCache(master_capacity, "master")
        self.result_cache = SolveCache(result_capacity, "result")
        self.flight = FlightRecorder(slow_log)
        self._count_lock = threading.Lock()
        self._trace_seq = 0

    # -- fingerprints -----------------------------------------------------------

    def link_union(self, path: Path) -> List[Link]:
        """The paper's ``P`` for this query: background ∪ path links."""
        return _collect_links(self.background, path)

    def query_fingerprint(self, path: Path) -> str:
        """Digest of (model, background, link union) — the cache locus."""
        return fingerprint(
            [
                self._model_fp,
                self._background_fp,
                [link.link_id for link in self.link_union(path)],
            ]
        )

    # -- serving ----------------------------------------------------------------

    def submit(
        self,
        query: AdmissionQuery,
        record_span: bool = True,
        trace_id: Optional[str] = None,
    ) -> AdmissionDecision:
        """Answer one query, using and feeding the caches.

        ``trace_id`` labels the query's flight record;
        :class:`BatchSession` derives one from the batch position, a
        standalone submit draws from the service-wide sequence.
        """
        recorder = get_recorder()
        started = time.perf_counter()
        if record_span:
            with recorder.span("serve.query"):
                outcome = self._available_bandwidth(query.path)
        else:
            outcome = self._available_bandwidth(query.path)
        admitted = outcome.bandwidth + self.tolerance >= query.demand_mbps
        latency = time.perf_counter() - started
        with self._count_lock:
            if trace_id is None:
                self._trace_seq += 1
                trace_id = f"t{self._trace_seq:06d}"
            recorder.count("serve.queries")
            recorder.count("serve.admitted" if admitted else "serve.rejected")
            recorder.histogram("serve.latency_seconds", latency)
            recorder.histogram("serve.bandwidth_mbps", outcome.bandwidth)
        self.flight.record(
            {
                "trace_id": trace_id,
                "query_id": query.query_id,
                "latency_seconds": latency,
                "admitted": admitted,
                "available_bandwidth_mbps": outcome.bandwidth,
                "demand_mbps": query.demand_mbps,
                "fingerprint": outcome.fingerprint,
                "cache_state": outcome.cache_state,
                "result_cache": outcome.result_cache,
                "columns_cache": outcome.columns_cache,
                "lp_cache": outcome.lp_cache,
                "columns": outcome.columns,
                "lp_warm_start": outcome.lp_warm_start,
                "lp_iterations": outcome.lp_iterations,
                "bottleneck_link": (
                    outcome.bottleneck[0] if outcome.bottleneck else None
                ),
                "bottleneck_price": (
                    outcome.bottleneck[1] if outcome.bottleneck else 0.0
                ),
            }
        )
        return AdmissionDecision(
            query_id=query.query_id,
            admitted=admitted,
            available_bandwidth_mbps=outcome.bandwidth,
            demand_mbps=query.demand_mbps,
            fingerprint=outcome.fingerprint,
            cache_state=outcome.cache_state,
            latency_seconds=latency,
            trace_id=trace_id,
            result_cache=outcome.result_cache,
            columns_cache=outcome.columns_cache,
            lp_cache=outcome.lp_cache,
            explanation=outcome.explanation,
        )

    def submit_many(
        self,
        queries: Sequence[AdmissionQuery],
        workers: Optional[int] = None,
    ) -> List[AdmissionDecision]:
        """Answer a batch via a :class:`BatchSession` (input order kept)."""
        return BatchSession(self, workers=workers).run(queries)

    def _available_bandwidth(self, path: Path) -> _QueryOutcome:
        """The solve outcome (answer + causal record) for one path."""
        recorder = get_recorder()
        union = self.link_union(path)
        union_key = tuple(link.link_id for link in union)
        path_key = tuple(link.link_id for link in path)
        outcome = _QueryOutcome(
            fingerprint(
                [self._model_fp, self._background_fp, list(union_key)]
            )
        )
        cached = self.result_cache.get((union_key, path_key))
        if cached is not None:
            # The cached entry carries the bandwidth plus its provenance
            # (bottleneck, explanation), so a result hit explains
            # identically to the solve that filled it.
            outcome.bandwidth, outcome.bottleneck, outcome.explanation = (
                cached
            )
            outcome.cache_state = "result"
            outcome.result_cache = "hit"
            return outcome

        def build() -> _MasterState:
            outcome.lp_cache = "miss"
            # get() + put() instead of get_or_compute so the outcome can
            # tell a column-cache hit from a fresh enumeration; the pair
            # records the identical hit/miss counters, and the factory
            # already runs single-flight under the master cache's lock.
            columns = self.enum_cache.get(union_key)
            if columns is None:
                outcome.columns_cache = "miss"
                columns = enumerate_maximal_independent_sets(
                    self.model, union, self.max_sets
                )
                self.enum_cache.put(union_key, columns)
            else:
                outcome.columns_cache = "hit"
            lp, f_var, lambda_vars = build_path_bandwidth_lp(
                columns, union, self._demands, set(path.links)
            )
            return _MasterState(lp, f_var, list(lambda_vars), columns, path_key)

        master = self.master_cache.get_or_compute(union_key, build)
        if outcome.lp_cache == "skipped":  # build() never ran
            outcome.lp_cache = "hit"
        outcome.cache_state = "cold" if outcome.lp_cache == "miss" else "warm"
        outcome.columns = len(master.columns)
        with master.lock:
            if master.path_key != path_key:
                # Retarget the cached program: the f column has a -1
                # demand-row coefficient exactly on the query path's links
                # (same orientation build_path_bandwidth_lp uses).
                master.lp.set_column(
                    master.f_var,
                    {f"demand[{link_id}]": -1.0 for link_id in path_key},
                )
                master.path_key = path_key
                outcome.lp_warm_start = True
                recorder.count("serve.lp.warm_starts")
            solution = master.lp.solve()
            result = path_bandwidth_from_solution(
                solution,
                master.lambda_vars,
                master.columns,
                self._demands,
            )
            outcome.bottleneck = top_binding_link(solution)
            if self.explain:
                outcome.explanation = explain_solution(
                    solution,
                    master.lp.certificate(),
                    master.columns,
                    union,
                    background=self.background,
                    bandwidth=result.available_bandwidth,
                )
        outcome.lp_iterations = int(solution.iterations or 0)
        self.result_cache.put(
            (union_key, path_key),
            (
                result.available_bandwidth,
                outcome.bottleneck,
                outcome.explanation,
            ),
        )
        outcome.bandwidth = result.available_bandwidth
        return outcome


class BatchSession:
    """Run a batch of queries grouped by link union.

    Grouping guarantees enumeration runs once per fingerprint for the
    batch regardless of LRU capacity (queries sharing a union are served
    consecutively, so the artifacts are still resident), and sorting a
    group by path keeps same-path queries adjacent where the LP solution
    cache and the result cache answer them for free.  With ``workers``
    set, groups run on a thread pool — artifacts don't contend across
    groups, and counters stay exact behind the cache locks (spans are
    skipped: the obs recorder's span stack is process-global).
    """

    def __init__(
        self, service: AdmissionService, workers: Optional[int] = None
    ):
        if workers is not None and workers < 1:
            workers = None
        self.service = service
        self.workers = workers

    def run(
        self, queries: Sequence[AdmissionQuery]
    ) -> List[AdmissionDecision]:
        """Answer all queries; results align with the input order."""
        recorder = get_recorder()
        groups: "OrderedDict[Tuple[str, ...], List[Tuple[int, AdmissionQuery]]]"
        groups = OrderedDict()
        for position, query in enumerate(queries):
            union_key = tuple(
                link.link_id
                for link in self.service.link_union(query.path)
            )
            groups.setdefault(union_key, []).append((position, query))
        recorder.count("serve.batch.queries", len(queries))
        recorder.count("serve.batch.groups", len(groups))

        decisions: List[Optional[AdmissionDecision]] = [None] * len(queries)
        record_span = self.workers is None

        def run_group(
            members: List[Tuple[int, AdmissionQuery]],
        ) -> None:
            ordered = sorted(
                members,
                key=lambda member: (
                    tuple(link.link_id for link in member[1].path),
                    member[0],
                ),
            )
            for position, query in ordered:
                # Trace id from the batch position: stable across runs
                # and across sequential vs threaded execution.
                decisions[position] = self.service.submit(
                    query,
                    record_span=record_span,
                    trace_id=f"b{position:05d}",
                )

        if self.workers is None:
            for members in groups.values():
                run_group(members)
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                for future in [
                    pool.submit(run_group, members)
                    for members in groups.values()
                ]:
                    future.result()
        return decisions  # type: ignore[return-value]
