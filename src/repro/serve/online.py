"""Event-driven online admission control under flow and node churn.

The batch serving layer (:mod:`repro.serve.service`) answers independent
queries against a *fixed* background.  An online controller faces the
harder problem: the background IS the history of its own decisions.
:class:`OnlineAdmissionController` consumes a
:class:`~repro.workloads.churn.FlowEvent` stream — flow arrivals and
departures plus node down/up churn — and answers every arrival with the
paper's Eq. 6 admission test against the currently-carried flows,
re-solving *incrementally*:

``result``
    (link union, path, demand vector) → bandwidth, a pure lookup;
``warm``
    the union's cached master LP is retargeted at the arrival's path
    (:meth:`~repro.core.lp.LinearProgram.set_column` on the ``f``
    column) and departed load is retired from its demand rows in place
    (:meth:`~repro.core.lp.LinearProgram.set_rhs`; every row whose RHS
    drops counts as an ``online.column_retirements``), so the solve
    reuses the assembled matrix and the previous basis;
``cold``
    an unseen link union builds a fresh master (counted as an
    ``online.rebuild_fallbacks`` — the bench gate fails if these grow
    faster than the event stream warrants).

Byte-identity is the contract, not an aspiration: the warm path edits
the cached program into *exactly* the program a cold
:func:`~repro.core.bandwidth.available_path_bandwidth` call would
assemble (same canonicalized matrix, same RHS floats — link demands are
re-summed from scratch each event rather than updated incrementally,
because float addition is not associative), so every online decision is
bit-equal to a cold Eq. 6 solve over the same carried flows.  Pass
``pin=True`` to cross-check each decision against the cold solver with
exact ``==`` and raise :class:`~repro.errors.VerificationError` on the
first divergence; ``repro.verify`` runs this invariant over all six
instance families.

Churn semantics:

* a departure removes the flow from the carried set; its load leaves
  the LP lazily, at the next arrival touching the same union;
* ``node-down`` force-departs every carried flow traversing the node
  (``online.forced_departures``) and makes paths through it unroutable;
* arrivals are routed by hop count over the full topology, then
  rejected as ``unrouted`` when the route traverses a down node (the
  router itself has no exclusion support — a deliberate simplification,
  the admission math is the subject here).

Telemetry mirrors the batch layer: ``online.*`` counters, latency /
bandwidth histograms (decision latencies additionally land on
``serve.latency_seconds`` so the committed SLO objectives gate the
online lane too), a ``online.carried_flows`` gauge, per-event flight
records with ``e<seq>`` trace ids, and caches namespaced under
``online.cache.*`` so the CI-gated ``serve.cache.*`` counters of the
batch layer stay untouched.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bandwidth import (
    _collect_links,
    available_path_bandwidth,
    build_path_bandwidth_lp,
    link_demands_from_paths,
    path_bandwidth_from_solution,
)
from repro.core.independent_sets import (
    RateIndependentSet,
    enumerate_maximal_independent_sets,
)
from repro.core.lp import LinearProgram
from repro.errors import ConfigurationError, RoutingError, VerificationError
from repro.fingerprint import fingerprint, model_fingerprint
from repro.interference.base import InterferenceModel
from repro.net.path import Path
from repro.obs import get_recorder
from repro.obs.explain import (
    Explanation,
    explain_path_bandwidth,
    explain_solution,
    top_binding_link,
)
from repro.routing.metrics import HopCountMetric, RoutingContext
from repro.routing.shortest_path import route
from repro.serve.cache import SolveCache
from repro.serve.flight import DEFAULT_SLOW_LOG_SIZE, FlightRecorder
from repro.workloads.churn import FlowEvent

__all__ = [
    "OnlineDecision",
    "OnlineAdmissionController",
    "run_online_session",
]

#: Sentinel: "route this arrival yourself" (vs an explicit path, which
#: may legitimately be None for unroutable).
_AUTO_ROUTE = object()


@dataclass(frozen=True)
class OnlineDecision:
    """The controller's answer to one arrival event.

    ``cache_state`` says what the answer cost: ``"result"`` (memoised),
    ``"warm"`` (cached master LP, retargeted/re-demanded in place),
    ``"cold"`` (fresh enumeration + build) or ``"unrouted"`` (no usable
    route, no solve).  All solving states produce the identical number.
    """

    seq: int
    trace_id: str
    time: float
    flow_id: str
    source: str
    destination: str
    demand_mbps: float
    routed: bool
    #: Node sequence of the hop-count route ('' route → empty tuple).
    path_nodes: Tuple[str, ...]
    admitted: bool
    available_bandwidth_mbps: float
    cache_state: str
    latency_seconds: float
    #: Carried-flow count *after* this decision took effect.
    carried_flows: int
    #: Digest of (model, link union, demand vector) — the exact cache
    #: locus this decision solved under; empty when unrouted.
    fingerprint: str = ""
    #: Decision provenance (:class:`~repro.obs.explain.Explanation`),
    #: populated when the controller runs with ``explain=True`` and the
    #: decision came from an Eq. 6 solve (never for ``unrouted`` /
    #: ``twohop`` answers).
    explanation: Optional[Explanation] = None


class _OnlineMaster:
    """A cached Eq. 6 master LP plus the state it was last solved at.

    ``path_key`` tracks where the ``f`` column currently points,
    ``demand_key`` the RHS vector (one float per union link, in union
    order) currently loaded into the demand rows — the warm path diffs
    both against the incoming query and edits only what changed.
    """

    __slots__ = (
        "lp",
        "f_var",
        "lambda_vars",
        "columns",
        "path_key",
        "demand_key",
        "lock",
    )

    def __init__(
        self,
        lp: LinearProgram,
        f_var: str,
        lambda_vars: List[str],
        columns: List[RateIndependentSet],
        path_key: Tuple[str, ...],
        demand_key: Tuple[float, ...],
    ):
        self.lp = lp
        self.f_var = f_var
        self.lambda_vars = lambda_vars
        self.columns = columns
        self.path_key = path_key
        self.demand_key = demand_key
        self.lock = threading.Lock()


class _ArrivalOutcome:
    """What one arrival's solve learned (answer + causal record)."""

    __slots__ = (
        "bandwidth",
        "cache_state",
        "fingerprint",
        "bottleneck",
        "explanation",
    )

    def __init__(self) -> None:
        self.bandwidth = 0.0
        self.cache_state = "cold"
        self.fingerprint = ""
        #: ``(link_id, shadow_price)`` of the top binding demand row —
        #: always recorded on solved arrivals for the flight recorder.
        self.bottleneck: Optional[Tuple[str, float]] = None
        self.explanation: Optional[Explanation] = None


class OnlineAdmissionController:
    """Streaming Eq. 6 admission over a churning carried-flow set.

    With ``incremental=True`` (the default) arrivals are answered
    through the union-keyed caches; ``incremental=False`` is the
    rebuild-per-event baseline — every arrival runs a cold
    :func:`~repro.core.bandwidth.available_path_bandwidth` solve — used
    by experiment X6 and the bench harness to price the caches.  Both
    modes make identical decisions (that *is* the byte-identity
    contract; ``pin=True`` asserts it per event).

    ``policy="twohop"`` swaps the Eq. 6 test for the distributed 2-hop
    estimate (:class:`~repro.routing.admission.TwoHopAdmission`) while
    keeping the event loop — routing, carried-set bookkeeping, node
    churn, telemetry — identical, so X6's head-to-head compares
    admission math, not harness differences.
    """

    def __init__(
        self,
        model: InterferenceModel,
        max_sets: Optional[int] = None,
        tolerance: float = 1e-6,
        enum_capacity: int = 64,
        master_capacity: int = 64,
        result_capacity: int = 4096,
        slow_log: int = DEFAULT_SLOW_LOG_SIZE,
        incremental: bool = True,
        pin: bool = False,
        policy: str = "eq6",
        explain: bool = False,
    ):
        if policy not in ("eq6", "twohop"):
            raise ConfigurationError(
                f"unknown online admission policy {policy!r} "
                "(known: eq6, twohop)"
            )
        if pin and policy != "eq6":
            raise ConfigurationError(
                "pin mode asserts byte-identity with the cold Eq. 6 "
                "solver; it only applies to policy='eq6'"
            )
        self.model = model
        self.network = model.network
        self.max_sets = max_sets
        self.tolerance = tolerance
        self.incremental = incremental
        self.pin = pin
        self.policy = policy
        #: With ``explain=True`` every Eq. 6 decision carries an
        #: :class:`~repro.obs.explain.Explanation`; off by default.
        self.explain = explain
        if policy == "twohop":
            from repro.routing.admission import TwoHopAdmission

            self._twohop: Optional[object] = TwoHopAdmission(
                model, tolerance=tolerance
            )
        else:
            self._twohop = None
        self._model_fp = model_fingerprint(model)
        self.enum_cache = SolveCache(
            enum_capacity, "enum", prefix="online.cache"
        )
        self.master_cache = SolveCache(
            master_capacity, "master", prefix="online.cache"
        )
        self.result_cache = SolveCache(
            result_capacity, "result", prefix="online.cache"
        )
        self.flight = FlightRecorder(slow_log)
        #: Carried flows in admission order: flow id → (path, demand).
        #: Insertion order is load-bearing — it fixes the link-union
        #: order, hence the LP row order, hence byte-identity with a
        #: cold solve over the same sequence of decisions.
        self._carried: "OrderedDict[str, Tuple[Path, float]]" = OrderedDict()
        self._down: set = set()
        self._routes: Dict[Tuple[str, str], Optional[Path]] = {}
        #: (union_key, demand_key) → digest.  The sha256 over canonical
        #: JSON costs more than a result-cache hit does; under churn the
        #: same carried-set configurations recur constantly, so the
        #: digest is worth memoizing (unbounded, but the key space is
        #: the visited configuration space — the same thing the result
        #: cache already holds).
        self._fp_memo: Dict[Tuple[Tuple[str, ...], Tuple[float, ...]], str] = {}
        self._metric = HopCountMetric()
        self._context = RoutingContext(model)
        #: Sequence ids handed to synthetic :meth:`admit_path` arrivals.
        self._synthetic_seq = 0

    # -- state ------------------------------------------------------------------

    def carried(self) -> List[Tuple[Path, float]]:
        """The carried flows as (path, demand) pairs, admission order."""
        return list(self._carried.values())

    def down_nodes(self) -> set:
        """Node ids currently down."""
        return set(self._down)

    # -- event loop -------------------------------------------------------------

    def handle(self, event: FlowEvent) -> Optional[OnlineDecision]:
        """Process one event; arrivals return a decision, churn returns None."""
        recorder = get_recorder()
        recorder.count("online.events")
        if event.kind == "arrival":
            return self._arrival(event)
        if event.kind == "departure":
            recorder.count("online.departures")
            self._carried.pop(event.flow_id, None)
            recorder.gauge("online.carried_flows", len(self._carried))
            return None
        if event.kind == "node-down":
            recorder.count("online.node_down")
            self._down.add(event.node_id)
            for flow_id in [
                flow_id
                for flow_id, (path, _demand) in self._carried.items()
                if any(event.node_id in link.endpoints for link in path)
            ]:
                del self._carried[flow_id]
                recorder.count("online.forced_departures")
            recorder.gauge("online.carried_flows", len(self._carried))
            return None
        if event.kind == "node-up":
            recorder.count("online.node_up")
            self._down.discard(event.node_id)
            return None
        raise ConfigurationError(f"unknown churn event kind {event.kind!r}")

    def admit_path(
        self,
        flow_id: str,
        path: Path,
        demand_mbps: float,
        at: float = 0.0,
    ) -> OnlineDecision:
        """Synthetic arrival over a caller-supplied, pre-routed path.

        The verify harness replays instances whose paths are arbitrary
        constructions, not hop-count routes, so the event API cannot
        reproduce them.  This entry point skips routing and runs the
        identical decision pipeline — solve (result/warm/cold), pin
        cross-check, carried-set update, telemetry — on ``path``
        directly.  Sequence ids are allocated from a private counter so
        synthetic arrivals interleave safely with a real event stream.
        """
        nodes = _path_nodes(path)
        event = FlowEvent(
            time=at,
            kind="arrival",
            seq=self._synthetic_seq,
            flow_id=flow_id,
            source=nodes[0] if nodes else "",
            destination=nodes[-1] if nodes else "",
            demand_mbps=demand_mbps,
        )
        self._synthetic_seq += 1
        return self._arrival(event, path=path)

    def _arrival(
        self, event: FlowEvent, path: object = _AUTO_ROUTE
    ) -> OnlineDecision:
        recorder = get_recorder()
        started = time.perf_counter()
        recorder.count("online.arrivals")
        if path is _AUTO_ROUTE:
            path = self._route(event.source, event.destination)
        if path is None:
            outcome = _ArrivalOutcome()
            outcome.cache_state = "unrouted"
            admitted = False
            recorder.count("online.unrouted")
        else:
            if self._twohop is not None:
                outcome = _ArrivalOutcome()
                outcome.cache_state = "twohop"
                outcome.bandwidth = self._twohop.estimate(
                    path, self.carried()
                ).available_bandwidth
            elif self.incremental:
                outcome = self._available_bandwidth(path)
            else:
                outcome = self._cold_bandwidth(path)
            admitted = outcome.bandwidth + self.tolerance >= event.demand_mbps
            if self.pin:
                self._pin_check(event, path, outcome, admitted)
            if admitted:
                self._carried[event.flow_id] = (path, event.demand_mbps)
        latency = time.perf_counter() - started
        recorder.count("online.admitted" if admitted else "online.rejected")
        recorder.histogram("online.latency_seconds", latency)
        recorder.histogram("serve.latency_seconds", latency)
        recorder.histogram("online.bandwidth_mbps", outcome.bandwidth)
        recorder.gauge("online.carried_flows", len(self._carried))
        trace_id = f"e{event.seq:06d}"
        self.flight.record(
            {
                "trace_id": trace_id,
                "query_id": event.flow_id,
                "latency_seconds": latency,
                "admitted": admitted,
                "available_bandwidth_mbps": outcome.bandwidth,
                "demand_mbps": event.demand_mbps,
                "fingerprint": outcome.fingerprint,
                "cache_state": outcome.cache_state,
                "carried_flows": len(self._carried),
                "bottleneck_link": (
                    outcome.bottleneck[0] if outcome.bottleneck else None
                ),
                "bottleneck_price": (
                    outcome.bottleneck[1] if outcome.bottleneck else 0.0
                ),
            }
        )
        return OnlineDecision(
            seq=event.seq,
            trace_id=trace_id,
            time=event.time,
            flow_id=event.flow_id,
            source=event.source,
            destination=event.destination,
            demand_mbps=event.demand_mbps,
            routed=path is not None,
            path_nodes=_path_nodes(path),
            admitted=admitted,
            available_bandwidth_mbps=outcome.bandwidth,
            cache_state=outcome.cache_state,
            latency_seconds=latency,
            carried_flows=len(self._carried),
            fingerprint=outcome.fingerprint,
            explanation=outcome.explanation,
        )

    # -- routing ----------------------------------------------------------------

    def _route(self, source: str, destination: str) -> Optional[Path]:
        """Hop-count route, or None when unroutable / through a down node."""
        if source in self._down or destination in self._down:
            return None
        key = (source, destination)
        if key not in self._routes:
            try:
                self._routes[key] = route(
                    self.network, source, destination,
                    self._metric, self._context,
                )
            except RoutingError:
                self._routes[key] = None
        path = self._routes[key]
        if path is None:
            return None
        if self._down and any(
            link.endpoints & self._down for link in path
        ):
            return None
        return path

    # -- solving ----------------------------------------------------------------

    def _fingerprint(
        self,
        union_key: Tuple[str, ...],
        demand_key: Tuple[float, ...],
    ) -> str:
        """Memoised digest of (model, link union, demand vector)."""
        memo_key = (union_key, demand_key)
        digest = self._fp_memo.get(memo_key)
        if digest is None:
            digest = fingerprint(
                [self._model_fp, list(union_key), list(demand_key)]
            )
            self._fp_memo[memo_key] = digest
        return digest

    def _query_state(self, path: Path):
        """(background, union, keys, demands) for an arrival's solve.

        Demands are re-summed from the full carried set every time:
        incremental add/subtract would drift from a cold solve's floats
        (addition order matters), and the sum is linear in carried
        flows — noise next to the solve.
        """
        background = list(self._carried.values())
        union = _collect_links(background, path)
        union_key = tuple(link.link_id for link in union)
        path_key = tuple(link.link_id for link in path)
        demands = link_demands_from_paths(background)
        demand_key = tuple(demands.get(link, 0.0) for link in union)
        return background, union, union_key, path_key, demands, demand_key

    def _available_bandwidth(self, path: Path) -> _ArrivalOutcome:
        """The incremental decision path: result → warm → cold."""
        recorder = get_recorder()
        (background, union, union_key, path_key,
         demands, demand_key) = self._query_state(path)
        outcome = _ArrivalOutcome()
        outcome.fingerprint = self._fingerprint(union_key, demand_key)
        cached = self.result_cache.get((union_key, path_key, demand_key))
        if cached is not None:
            # Cached entries carry the answer plus its provenance, so a
            # result hit explains identically to the solve behind it.
            outcome.bandwidth, outcome.bottleneck, outcome.explanation = (
                cached
            )
            outcome.cache_state = "result"
            return outcome

        master = self.master_cache.get(union_key)
        if master is None:
            outcome.cache_state = "cold"
            recorder.count("online.rebuild_fallbacks")
            columns = self.enum_cache.get(union_key)
            if columns is None:
                columns = enumerate_maximal_independent_sets(
                    self.model, union, self.max_sets
                )
                self.enum_cache.put(union_key, columns)
            lp, f_var, lambda_vars = build_path_bandwidth_lp(
                columns, union, demands, set(path.links)
            )
            master = _OnlineMaster(
                lp, f_var, list(lambda_vars), columns, path_key, demand_key
            )
            self.master_cache.put(union_key, master)
        else:
            outcome.cache_state = "warm"
            recorder.count("online.warm_resolves")
        with master.lock:
            if master.path_key != path_key:
                # Retarget the cached program at the new arrival's path
                # (same -1 orientation build_path_bandwidth_lp uses).
                master.lp.set_column(
                    master.f_var,
                    {f"demand[{link_id}]": -1.0 for link_id in path_key},
                )
                master.path_key = path_key
            if master.demand_key != demand_key:
                for link_id, old, new in zip(
                    union_key, master.demand_key, demand_key
                ):
                    if new != old:
                        master.lp.set_rhs(f"demand[{link_id}]", new)
                        if new < old:
                            # Departed load leaving the warm master: the
                            # row's requirement shrinks in place instead
                            # of rebuilding the program without it.
                            recorder.count("online.column_retirements")
                master.demand_key = demand_key
            solution = master.lp.solve()
            result = path_bandwidth_from_solution(
                solution, master.lambda_vars, master.columns, demands
            )
            outcome.bottleneck = top_binding_link(solution)
            if self.explain:
                outcome.explanation = explain_solution(
                    solution,
                    master.lp.certificate(),
                    master.columns,
                    union,
                    background=background,
                    bandwidth=result.available_bandwidth,
                )
        self.result_cache.put(
            (union_key, path_key, demand_key),
            (
                result.available_bandwidth,
                outcome.bottleneck,
                outcome.explanation,
            ),
        )
        outcome.bandwidth = result.available_bandwidth
        return outcome

    def _cold_bandwidth(self, path: Path) -> _ArrivalOutcome:
        """The rebuild-per-event baseline: no caches, fresh everything."""
        recorder = get_recorder()
        (background, _union, union_key, _path_key,
         _demands, demand_key) = self._query_state(path)
        recorder.count("online.rebuild_fallbacks")
        outcome = _ArrivalOutcome()
        outcome.cache_state = "cold"
        outcome.fingerprint = self._fingerprint(union_key, demand_key)
        if self.explain:
            result, explanation = explain_path_bandwidth(
                self.model, path, background, max_sets=self.max_sets
            )
            outcome.explanation = explanation
            prices = explanation.marginal_bandwidth
            if prices:
                # Same pick as top_binding_link: max price, then the
                # smaller link id.
                link_id = min(
                    prices, key=lambda member: (-prices[member], member)
                )
                if prices[link_id] > 0.0:
                    outcome.bottleneck = (link_id, prices[link_id])
        else:
            result = available_path_bandwidth(
                self.model, path, background, max_sets=self.max_sets
            )
        outcome.bandwidth = result.available_bandwidth
        return outcome

    def _pin_check(
        self,
        event: FlowEvent,
        path: Path,
        outcome: _ArrivalOutcome,
        admitted: bool,
    ) -> None:
        """Assert this decision == a cold Eq. 6 solve, bit for bit."""
        get_recorder().count("online.pin_checks")
        reference = available_path_bandwidth(
            self.model, path, self.carried(), max_sets=self.max_sets
        )
        cold = reference.available_bandwidth
        cold_admitted = cold + self.tolerance >= event.demand_mbps
        if outcome.bandwidth != cold or admitted != cold_admitted:
            raise VerificationError(
                f"online decision for {event.flow_id!r} diverged from the "
                f"cold Eq. 6 solve: online {outcome.bandwidth!r} "
                f"(admitted={admitted}) vs cold {cold!r} "
                f"(admitted={cold_admitted}), cache_state="
                f"{outcome.cache_state}"
            )


def _path_nodes(path: Optional[Path]) -> Tuple[str, ...]:
    """The node-id sequence of ``path`` (empty when unrouted)."""
    if path is None:
        return ()
    links = list(path)
    if not links:
        return ()
    nodes = [links[0].sender.node_id]
    nodes.extend(link.receiver.node_id for link in links)
    return tuple(nodes)


def run_online_session(
    controller: OnlineAdmissionController,
    events: Sequence[FlowEvent],
) -> Tuple[List[OnlineDecision], float]:
    """Drive ``controller`` over ``events``; (arrival decisions, wall s).

    Publishes the session's ``online.decisions_per_second`` gauge (the
    SLO floor reads it) from the caller-visible wall time.
    """
    recorder = get_recorder()
    started = time.perf_counter()
    decisions: List[OnlineDecision] = []
    with recorder.span("online.session"):
        for event in events:
            decision = controller.handle(event)
            if decision is not None:
                decisions.append(decision)
    wall = time.perf_counter() - started
    recorder.gauge(
        "online.decisions_per_second",
        len(decisions) / wall if wall > 0 else 0.0,
    )
    return decisions, wall
