"""JSONL wire format of the serving layer.

A query stream is one JSON object per line::

    {"id": "q1", "path": ["n3", "n4", "n9"], "demand_mbps": 2.0}

``path`` is the node sequence of the candidate path (resolved against
the topology's directed links), ``demand_mbps`` the rate to admit, and
``id`` an optional label (defaults to ``q<line>``).  Background traffic
uses the same shape minus ``id``.  Malformed lines raise
:class:`~repro.errors.ConfigurationError` with the line number — a
query stream is configuration, and bad configuration fails loudly
before any solving starts.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.obs.explain import explanation_from_dict, explanation_to_dict
from repro.obs.metrics import Histogram
from repro.net.path import Path
from repro.net.topology import Network
from repro.serve.online import OnlineDecision
from repro.serve.service import AdmissionDecision, AdmissionQuery

__all__ = [
    "path_from_nodes",
    "load_queries",
    "load_background",
    "decision_to_dict",
    "summarize_decisions",
    "online_decision_to_dict",
    "online_decision_from_dict",
    "summarize_online_decisions",
]


def path_from_nodes(network: Network, nodes: List[str]) -> Path:
    """The :class:`Path` along consecutive links of ``nodes``."""
    if len(nodes) < 2:
        raise ConfigurationError(
            f"a path needs at least two nodes, got {nodes!r}"
        )
    try:
        return Path(
            network.link_between(sender, receiver)
            for sender, receiver in zip(nodes, nodes[1:])
        )
    except TopologyError as error:
        raise ConfigurationError(f"unroutable path {nodes!r}: {error}") from error


def _parse_line(
    network: Network, line: str, line_number: int, source: str
) -> Tuple[str, Path, float]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"{source}:{line_number}: malformed JSON: {error}"
        ) from error
    if not isinstance(record, dict):
        raise ConfigurationError(
            f"{source}:{line_number}: expected an object, got "
            f"{type(record).__name__}"
        )
    try:
        nodes = record["path"]
        demand = record["demand_mbps"]
    except KeyError as error:
        raise ConfigurationError(
            f"{source}:{line_number}: missing key {error}"
        ) from error
    if not isinstance(demand, (int, float)) or isinstance(demand, bool):
        raise ConfigurationError(
            f"{source}:{line_number}: demand_mbps must be a number, got "
            f"{demand!r}"
        )
    try:
        path = path_from_nodes(network, list(nodes))
    except ConfigurationError as error:
        raise ConfigurationError(
            f"{source}:{line_number}: {error}"
        ) from error
    return str(record.get("id", f"q{line_number}")), path, float(demand)


def load_queries(filename: str, network: Network) -> List[AdmissionQuery]:
    """Parse a JSONL query stream against ``network``."""
    queries = []
    with open(filename, "r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            if not line.strip():
                continue
            query_id, path, demand = _parse_line(
                network, line, line_number, filename
            )
            queries.append(AdmissionQuery(query_id, path, demand))
    return queries


def load_background(
    filename: str, network: Network
) -> List[Tuple[Path, float]]:
    """Parse a JSONL background-traffic file as (path, demand) pairs."""
    background = []
    with open(filename, "r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            if not line.strip():
                continue
            _query_id, path, demand = _parse_line(
                network, line, line_number, filename
            )
            background.append((path, demand))
    return background


def summarize_decisions(
    decisions: Sequence[AdmissionDecision],
    wall_seconds: float,
) -> Dict[str, Any]:
    """Throughput/latency summary of a served batch (JSON-able).

    ``queries_per_second`` uses the caller-measured wall time (the
    per-decision latencies don't sum to it under threading); p50/p99
    are nearest-rank estimates from a streaming
    :class:`~repro.obs.metrics.Histogram` over the decision latencies —
    within one log bucket (~19% relative) of the sorted-sample values,
    the same numbers a live metrics export shows.  The histogram itself
    rides along under ``latency_histogram``.
    """
    histogram = Histogram()
    for decision in decisions:
        histogram.observe(decision.latency_seconds)
    return {
        "queries": len(decisions),
        "admitted": sum(1 for d in decisions if d.admitted),
        "rejected": sum(1 for d in decisions if not d.admitted),
        "cache_states": dict(
            Counter(d.cache_state for d in decisions)
        ),
        "wall_seconds": wall_seconds,
        "queries_per_second": (
            len(decisions) / wall_seconds if wall_seconds > 0 else 0.0
        ),
        "p50_latency_seconds": histogram.quantile(0.50),
        "p99_latency_seconds": histogram.quantile(0.99),
        "latency_histogram": histogram.to_dict(),
    }


def decision_to_dict(decision: AdmissionDecision) -> Dict[str, Any]:
    """An :class:`AdmissionDecision` as a JSON-able record.

    The telemetry fields (``trace_id`` and the per-cache-level
    outcomes) are additions to the original wire format — consumers of
    the old keys are unaffected.
    """
    record = {
        "id": decision.query_id,
        "admitted": decision.admitted,
        "available_bandwidth_mbps": decision.available_bandwidth_mbps,
        "demand_mbps": decision.demand_mbps,
        "fingerprint": decision.fingerprint,
        "cache_state": decision.cache_state,
        "latency_seconds": decision.latency_seconds,
        "trace_id": decision.trace_id,
        "result_cache": decision.result_cache,
        "columns_cache": decision.columns_cache,
        "lp_cache": decision.lp_cache,
    }
    if decision.explanation is not None:
        record["explanation"] = explanation_to_dict(decision.explanation)
    return record


def online_decision_to_dict(decision: OnlineDecision) -> Dict[str, Any]:
    """An :class:`~repro.serve.online.OnlineDecision` as a JSON record.

    The mapping is lossless: ``online_decision_from_dict`` rebuilds an
    equal dataclass, float fields included — JSON serializes Python
    floats by shortest round-tripping repr, so a JSONL decision log is
    an exact wire format, not an approximation.
    """
    record = {
        "seq": decision.seq,
        "trace_id": decision.trace_id,
        "time": decision.time,
        "flow_id": decision.flow_id,
        "source": decision.source,
        "destination": decision.destination,
        "demand_mbps": decision.demand_mbps,
        "routed": decision.routed,
        "path": list(decision.path_nodes),
        "admitted": decision.admitted,
        "available_bandwidth_mbps": decision.available_bandwidth_mbps,
        "cache_state": decision.cache_state,
        "latency_seconds": decision.latency_seconds,
        "carried_flows": decision.carried_flows,
        "fingerprint": decision.fingerprint,
    }
    if decision.explanation is not None:
        record["explanation"] = explanation_to_dict(decision.explanation)
    return record


def online_decision_from_dict(record: Dict[str, Any]) -> OnlineDecision:
    """Rebuild an :class:`~repro.serve.online.OnlineDecision` record."""
    try:
        return OnlineDecision(
            seq=int(record["seq"]),
            trace_id=str(record["trace_id"]),
            time=float(record["time"]),
            flow_id=str(record["flow_id"]),
            source=str(record["source"]),
            destination=str(record["destination"]),
            demand_mbps=float(record["demand_mbps"]),
            routed=bool(record["routed"]),
            path_nodes=tuple(str(node) for node in record["path"]),
            admitted=bool(record["admitted"]),
            available_bandwidth_mbps=float(
                record["available_bandwidth_mbps"]
            ),
            cache_state=str(record["cache_state"]),
            latency_seconds=float(record["latency_seconds"]),
            carried_flows=int(record["carried_flows"]),
            fingerprint=str(record.get("fingerprint", "")),
            explanation=(
                explanation_from_dict(record["explanation"])
                if record.get("explanation") is not None
                else None
            ),
        )
    except KeyError as error:
        raise ConfigurationError(
            f"online decision record missing key {error}"
        ) from error


def summarize_online_decisions(
    decisions: Sequence[OnlineDecision],
    wall_seconds: float,
) -> Dict[str, Any]:
    """Throughput/latency summary of an online session (JSON-able).

    Same shape as :func:`summarize_decisions` with online vocabulary:
    ``decisions_per_second`` over the caller-measured wall time, the
    unrouted count broken out (unrouted arrivals are rejections that
    never reached the solver), and the streaming latency histogram
    embedded for offline quantile work.
    """
    histogram = Histogram()
    for decision in decisions:
        histogram.observe(decision.latency_seconds)
    return {
        "decisions": len(decisions),
        "admitted": sum(1 for d in decisions if d.admitted),
        "rejected": sum(1 for d in decisions if not d.admitted),
        "unrouted": sum(1 for d in decisions if not d.routed),
        "cache_states": dict(
            Counter(d.cache_state for d in decisions)
        ),
        "wall_seconds": wall_seconds,
        "decisions_per_second": (
            len(decisions) / wall_seconds if wall_seconds > 0 else 0.0
        ),
        "p50_latency_seconds": histogram.quantile(0.50),
        "p99_latency_seconds": histogram.quantile(0.99),
        "latency_histogram": histogram.to_dict(),
    }
