"""Bounded LRU cache for solve artifacts, instrumented on the obs recorder.

One :class:`SolveCache` holds one kind of artifact — enumerated LP
columns, warm master LPs, admission results — keyed by the serving
layer's fingerprints.  Capacity is a hard bound: inserting into a full
cache evicts the least-recently-used entry, so a long-lived
:class:`~repro.serve.service.AdmissionService` holds at most
``capacity`` artifacts per cache no matter how many distinct workloads
pass through it.

Every operation lands on the ambient :mod:`repro.obs` recorder as
``<prefix>.<label>.hits`` / ``.misses`` / ``.evictions`` counters and a
``<prefix>.<label>.size`` gauge (prefix ``serve.cache`` by default;
the online controller uses ``online.cache``), and is mirrored in the
cache's own
:attr:`~SolveCache.hits` / :attr:`~SolveCache.misses` /
:attr:`~SolveCache.evictions` attributes.  All mutation happens under an
internal lock, and :meth:`SolveCache.get_or_compute` runs its factory
under that lock too (single-flight: concurrent requests for the same key
compute the artifact once), so the local stats are exact under
concurrency — the obs counters serialize behind the same lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional

from repro.errors import ConfigurationError
from repro.obs import get_recorder

__all__ = ["SolveCache"]


class SolveCache:
    """LRU-bounded key/value store with hit/miss/eviction accounting."""

    def __init__(
        self, capacity: int, label: str, prefix: str = "serve.cache"
    ):
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.label = label
        #: Obs-counter namespace: ``<prefix>.<label>.hits`` and friends.
        #: The online controller passes ``"online.cache"`` so its cache
        #: traffic never inflates the CI-gated ``serve.cache.*`` counters
        #: of the batch serving layer.
        self.prefix = prefix
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self):
        """Current keys, least- to most-recently used (a snapshot)."""
        with self._lock:
            return list(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` (refreshing recency), else ``None``."""
        with self._lock:
            return self._get_locked(key)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key`` as most recent, evicting LRU entries past capacity."""
        with self._lock:
            self._put_locked(key, value)

    def get_or_compute(
        self, key: Hashable, factory: Callable[[], Any]
    ) -> Any:
        """The cached value for ``key``, computing and inserting on miss.

        The factory runs under the cache lock (single-flight): when
        several threads miss on the same key at once, exactly one
        computes and the rest get its artifact.  The flip side is that a
        slow factory briefly blocks the whole cache — acceptable here,
        where the artifacts exist to be computed rarely.
        """
        with self._lock:
            value = self._get_locked(key)
            if value is None:
                value = factory()
                self._put_locked(key, value)
            return value

    def _get_locked(self, key: Hashable) -> Optional[Any]:
        recorder = get_recorder()
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            recorder.count(f"{self.prefix}.{self.label}.hits")
            return self._entries[key]
        self.misses += 1
        recorder.count(f"{self.prefix}.{self.label}.misses")
        return None

    def _put_locked(self, key: Hashable, value: Any) -> None:
        recorder = get_recorder()
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            recorder.count(f"{self.prefix}.{self.label}.evictions")
        recorder.gauge(f"{self.prefix}.{self.label}.size", len(self._entries))
