"""Command-line entry point: regenerate any experiment's data.

Usage::

    repro list               # show available experiments
    repro run e2             # reproduce the Section 5.1 worked example
    repro run e4 e5          # several in one go
    python -m repro run e1   # module form

Resilience: sweeps are fault isolated — a failed sweep item is reported
(after the tables) instead of aborting the run, and ``--strict`` escalates
such partial results to exit code 1.  ``--checkpoint-dir DIR`` persists
per-item results so an interrupted run resumed with ``--resume`` skips
completed items and prints byte-identical tables.  ``--inject-faults``
activates the deterministic chaos harness (:mod:`repro.testing.faults`)
used by CI to exercise exactly these paths.

Exit codes: 0 success (including absorbed partial failures), 1 solver or
model failure (infeasible problem, exhausted solver fallbacks, or partial
failures under ``--strict``), 2 usage errors (unknown experiment, bad
configuration, unusable checkpoint directory).
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import nullcontext
from typing import List, Optional

from repro.errors import CheckpointError, ConfigurationError, ReproError
from repro.experiments.checkpoint import CheckpointStore, use_checkpoint_store
from repro.experiments.failures import collect_failures, format_failures
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.obs import (
    Recorder,
    format_trace,
    get_recorder,
    use_recorder,
    write_run_report,
)

__all__ = ["main", "build_parser"]

#: Experiments that accept the random-topology workload parameters.
_CONFIGURABLE = {"e3", "e4", "e5", "x1", "x2"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Available Bandwidth in "
            "Multirate and Multihop Wireless Sensor Networks' (ICDCS 2009)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")
    verify_parser = subparsers.add_parser(
        "verify",
        help="check the paper's exact numbers, then run the "
        "differential oracle over random instances",
    )
    verify_parser.add_argument(
        "--instances",
        type=int,
        default=25,
        help="random instances for the differential oracle (default 25)",
    )
    verify_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; every (seed, instances) pair replays exactly",
    )
    verify_parser.add_argument(
        "--profile",
        choices=("quick", "deep"),
        default="quick",
        help="'deep' adds the CSMA-simulation invariant and a finer "
        "schedule replay (default quick)",
    )
    verify_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a schema-versioned JSON report of the oracle run",
    )
    run_parser = subparsers.add_parser("run", help="run experiments by id")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help="experiment ids (see 'repro list')",
    )
    run_parser.add_argument(
        "--topology-seed",
        type=int,
        default=None,
        help="node-placement seed for the random-topology experiments "
        f"({', '.join(sorted(_CONFIGURABLE))})",
    )
    run_parser.add_argument(
        "--flow-seed",
        type=int,
        default=None,
        help="flow-endpoint seed for the random-topology experiments",
    )
    run_parser.add_argument(
        "--flows",
        type=int,
        default=None,
        help="number of arriving flows for the random-topology experiments",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for experiments that sweep independent "
        "units (e3, e4, e5, s1); results are identical to a sequential run",
    )
    run_parser.add_argument(
        "--trace",
        action="store_true",
        help="print a span tree and solver counters after the report "
        "(tracing never changes the results)",
    )
    run_parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write the machine-readable run report (spans, counters, "
        "gauges, failures; schema-versioned JSON) to PATH",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist per-item sweep results under DIR/<experiment-id> so "
        "an interrupted run can be resumed; without --resume an existing "
        "checkpoint for the experiment is cleared first",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint-dir: skip items already completed by a "
        "previous run (tables are byte-identical to an uninterrupted run)",
    )
    run_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when a sweep completes with partial failures "
        "(default: report them and exit 0)",
    )
    run_parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="testing only: deterministically inject faults, e.g. "
        "'solver@1' (fail the 1st LP solve's primary attempt), "
        "'solver-fatal@2' (exhaust every attempt of the 2nd solve), "
        "'worker@1' (crash the worker of the 1st sweep item); "
        "comma-separate to combine",
    )
    return parser


def _configured_runner(experiment_id: str, args: argparse.Namespace):
    """Resolve an experiment, honouring the workload flags when given."""
    workers = getattr(args, "workers", None)
    overrides = {
        "topology_seed": args.topology_seed,
        "flow_seed": args.flow_seed,
        "n_flows": args.flows,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if not overrides or experiment_id not in _CONFIGURABLE:
        return lambda: run_experiment(experiment_id, workers=workers)
    from repro.experiments.extensions import (
        run_admission_accuracy,
        run_joint_routing,
    )
    from repro.experiments.fig2_paths import run_fig2
    from repro.experiments.fig3_routing import Fig3Config, run_fig3
    from repro.experiments.fig4_estimation import run_fig4

    config = Fig3Config(**overrides)
    runners = {
        "e3": run_fig2,
        "e4": run_fig3,
        "e5": run_fig4,
        "x1": run_admission_accuracy,
        "x2": run_joint_routing,
    }
    def call():
        # The override path bypasses run_experiment, so it opens the
        # experiment span and failure tag itself to keep traces and
        # failure reports uniform.
        from repro.experiments.failures import tag_experiment

        with get_recorder().span(f"experiment.{experiment_id}"), \
                tag_experiment(experiment_id):
            if workers is not None and experiment_id in {"e3", "e4", "e5"}:
                return runners[experiment_id](config, workers=workers)
            return runners[experiment_id](config)

    return call


def _list_experiments() -> str:
    width = max(len(eid) for eid in EXPERIMENTS)
    lines = [
        f"  {spec.experiment_id:<{width}} "
        f"{'*' if spec.supports_workers else ' '} {spec.description}"
        for spec in EXPERIMENTS.values()
    ]
    lines.append("")
    lines.append("  * accepts --workers N (parallel sweep, identical output)")
    return "\n".join(["available experiments:"] + lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        print(_list_experiments())
        return 0
    if args.command == "verify":
        from repro.verify import (
            format_differential,
            format_verification,
            run_differential,
            run_verification,
            write_run_document,
        )

        checks = run_verification()
        print(format_verification(checks))
        recorder = Recorder()
        try:
            with use_recorder(recorder):
                run = run_differential(
                    instances=args.instances,
                    seed=args.seed,
                    profile=args.profile,
                )
        except ConfigurationError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(format_differential(run))
        if args.json is not None:
            write_run_document(args.json, run, counters=recorder.counters)
        paper_ok = all(check.passed for check in checks)
        return 0 if paper_ok and run.passed else 1
    tracing = args.trace or args.trace_json is not None
    recorder = Recorder() if tracing else None
    exit_code = 0
    ran: List[str] = []
    all_failures: List[object] = []
    if args.inject_faults is not None:
        from repro.testing.faults import inject_faults, plan_from_spec

        try:
            fault_scope = inject_faults(plan_from_spec(args.inject_faults))
        except ConfigurationError as error:
            print(str(error), file=sys.stderr)
            return 2
    else:
        fault_scope = nullcontext()
    with use_recorder(recorder), fault_scope:
        for experiment_id in args.experiments:
            if experiment_id not in EXPERIMENTS:
                print(f"unknown experiment: {experiment_id}", file=sys.stderr)
                exit_code = 2
                continue
            store = None
            if args.checkpoint_dir is not None:
                try:
                    store = CheckpointStore(
                        os.path.join(args.checkpoint_dir, experiment_id),
                        experiment_id,
                    )
                except CheckpointError as error:
                    print(str(error), file=sys.stderr)
                    exit_code = 2
                    continue
                if not args.resume:
                    store.clear_items()
            try:
                with collect_failures() as failures, \
                        use_checkpoint_store(store):
                    result = _configured_runner(experiment_id, args)()
            except ConfigurationError as error:
                print(str(error), file=sys.stderr)
                exit_code = 2
                continue
            except ReproError as error:
                print(f"{experiment_id}: {error}", file=sys.stderr)
                exit_code = max(exit_code, 1)
                continue
            ran.append(experiment_id)
            print(result.table())
            print()
            if failures:
                all_failures.extend(failures)
                print(format_failures(failures))
                print()
                if args.strict:
                    exit_code = max(exit_code, 1)
    if recorder is not None:
        if args.trace:
            print(format_trace(recorder))
            print()
        if args.trace_json is not None:
            write_run_report(
                recorder,
                args.trace_json,
                experiments=ran,
                failures=all_failures,
            )
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
