"""Command-line entry point: regenerate any experiment's data.

Usage::

    repro list               # show available experiments
    repro run e2             # reproduce the Section 5.1 worked example
    repro run e4 e5          # several in one go
    repro serve --queries q.jsonl   # batch admission queries (repro.serve)
    repro explain --path n1,n2,n3 --demand 2   # why a decision came out
    python -m repro run e1   # module form

Resilience: sweeps are fault isolated — a failed sweep item is reported
(after the tables) instead of aborting the run, and ``--strict`` escalates
such partial results to exit code 1.  ``--checkpoint-dir DIR`` persists
per-item results so an interrupted run resumed with ``--resume`` skips
completed items and prints byte-identical tables.  ``--inject-faults``
activates the deterministic chaos harness (:mod:`repro.testing.faults`)
used by CI to exercise exactly these paths.

Observability: ``--trace`` prints the span tree, ``--trace-json`` /
``--trace-events`` write machine-readable reports (``-`` = stdout, after
the tables), and every traced run appends a record to the run-history
store (default ``.repro-history/``; ``--no-history`` opts out).  The
``repro obs`` group inspects that store: ``repro obs history``, ``repro
obs last``, ``repro obs diff A B [--strict]``, ``repro obs history
prune --keep N`` (compaction).  Telemetry: ``--metrics-out`` exports
OpenMetrics text, ``--metrics-jsonl`` appends periodic snapshots that
``repro obs tail -f`` renders live, and ``repro serve --slow-log``
prints the flight recorder's slowest queries.

Exit codes: 0 success (including absorbed partial failures), 1 solver or
model failure (infeasible problem, exhausted solver fallbacks, partial
failures under ``--strict``, or a trace regression under ``repro obs
diff --strict``), 2 usage errors (unknown experiment, bad configuration,
unusable checkpoint directory, unresolvable history refs).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import nullcontext
from typing import List, Optional

from repro.errors import CheckpointError, ConfigurationError, ReproError
from repro.experiments.checkpoint import CheckpointStore, use_checkpoint_store
from repro.experiments.failures import collect_failures, format_failures
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.obs import (
    Recorder,
    format_trace,
    get_recorder,
    use_recorder,
    write_run_report,
    write_trace_events,
)
from repro.obs import history as obs_history

__all__ = ["main", "build_parser"]

#: Experiments that accept the random-topology workload parameters.
_CONFIGURABLE = {"e3", "e4", "e5", "x1", "x2"}


def _add_metrics_flags(sub: argparse.ArgumentParser) -> None:
    """The metrics-export flags shared by ``run`` and ``serve``."""
    sub.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="export counters/gauges/histograms in the Prometheus/"
        "OpenMetrics text format to PATH ('-' = stdout), rewritten "
        "periodically while the command runs and once at the end",
    )
    sub.add_argument(
        "--metrics-jsonl",
        metavar="PATH",
        default=None,
        help="append one metrics snapshot per flush to this JSONL "
        "stream (render it live with 'repro obs tail -f PATH')",
    )
    sub.add_argument(
        "--metrics-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="seconds between periodic metrics flushes (default 5)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'Available Bandwidth in "
            "Multirate and Multihop Wireless Sensor Networks' (ICDCS 2009)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")
    verify_parser = subparsers.add_parser(
        "verify",
        help="check the paper's exact numbers, then run the "
        "differential oracle over random instances",
    )
    verify_parser.add_argument(
        "--instances",
        type=int,
        default=25,
        help="random instances for the differential oracle (default 25)",
    )
    verify_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; every (seed, instances) pair replays exactly",
    )
    verify_parser.add_argument(
        "--profile",
        choices=("quick", "deep"),
        default="quick",
        help="'deep' adds the CSMA-simulation invariant and a finer "
        "schedule replay (default quick)",
    )
    verify_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write a schema-versioned JSON report of the oracle run",
    )
    run_parser = subparsers.add_parser("run", help="run experiments by id")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help="experiment ids (see 'repro list')",
    )
    run_parser.add_argument(
        "--topology-seed",
        type=int,
        default=None,
        help="node-placement seed for the random-topology experiments "
        f"({', '.join(sorted(_CONFIGURABLE))})",
    )
    run_parser.add_argument(
        "--flow-seed",
        type=int,
        default=None,
        help="flow-endpoint seed for the random-topology experiments",
    )
    run_parser.add_argument(
        "--flows",
        type=int,
        default=None,
        help="number of arriving flows for the random-topology experiments",
    )
    run_parser.add_argument(
        "--tile-size",
        type=int,
        default=None,
        help="path links per interference tile for the scaling study "
        "(x7 only; default 6 — smaller tiles are cheaper but widen the "
        "[LB, UB] bracket)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for experiments that sweep independent "
        "units (e3, e4, e5, s1); results are identical to a sequential run",
    )
    run_parser.add_argument(
        "--trace",
        action="store_true",
        help="print a span tree and solver counters after the report "
        "(tracing never changes the results)",
    )
    run_parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write the machine-readable run report (spans, counters, "
        "gauges, failures; schema-versioned JSON) to PATH ('-' = stdout, "
        "after the tables)",
    )
    run_parser.add_argument(
        "--trace-events",
        metavar="PATH",
        default=None,
        help="record per-span begin/end events and write a Chrome "
        "trace-event JSON timeline to PATH ('-' = stdout) — load it in "
        "https://ui.perfetto.dev; parallel sweeps get one track per "
        "worker",
    )
    _add_metrics_flags(run_parser)
    run_parser.add_argument(
        "--history-dir",
        metavar="DIR",
        default=None,
        help="run-history store a traced run appends its record to "
        f"(default {obs_history.DEFAULT_HISTORY_DIR!r})",
    )
    run_parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this traced run to the run-history store",
    )
    run_parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist per-item sweep results under DIR/<experiment-id> so "
        "an interrupted run can be resumed; without --resume an existing "
        "checkpoint for the experiment is cleared first",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint-dir: skip items already completed by a "
        "previous run (tables are byte-identical to an uninterrupted run)",
    )
    run_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when a sweep completes with partial failures "
        "(default: report them and exit 0)",
    )
    run_parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="testing only: deterministically inject faults, e.g. "
        "'solver@1' (fail the 1st LP solve's primary attempt), "
        "'solver-fatal@2' (exhaust every attempt of the 2nd solve), "
        "'worker@1' (crash the worker of the 1st sweep item); "
        "comma-separate to combine",
    )
    serve_parser = subparsers.add_parser(
        "serve",
        help="answer a JSONL admission-query stream through the "
        "caching service (repro.serve)",
    )
    serve_parser.add_argument(
        "--queries",
        metavar="PATH",
        default=None,
        help="JSONL query stream: one "
        '{"id", "path": [node, ...], "demand_mbps"} object per line '
        "(required unless --online)",
    )
    serve_parser.add_argument(
        "--online",
        action="store_true",
        help="serve a generated churn event stream (flow arrivals/"
        "departures + node down/up) through the incremental online "
        "admission controller instead of a --queries file",
    )
    serve_parser.add_argument(
        "--events",
        type=int,
        default=500,
        metavar="N",
        help="online mode: length of the churn event stream (default 500)",
    )
    serve_parser.add_argument(
        "--stream-seed",
        type=int,
        default=17,
        help="online mode: seed of the churn event stream (default 17, "
        "the churn-smoke CI lane's)",
    )
    serve_parser.add_argument(
        "--strict",
        action="store_true",
        help="online mode: cross-check every decision against a cold "
        "Eq. 6 solve (exact equality) and exit 1 on the first divergence",
    )
    serve_parser.add_argument(
        "--decisions-out",
        metavar="PATH",
        default=None,
        help="online mode: append each decision as one JSONL record to "
        "PATH (the exact wire format online_decision_from_dict reads)",
    )
    serve_parser.add_argument(
        "--topology",
        metavar="PATH",
        default=None,
        help="serve over this saved topology (repro.net.io JSON; "
        "default: the paper's 30-node random topology)",
    )
    serve_parser.add_argument(
        "--paper-seed",
        type=int,
        default=8,
        help="placement seed of the default paper topology (default 8, "
        "the fig3 experiment's)",
    )
    serve_parser.add_argument(
        "--model",
        choices=("protocol", "physical"),
        default="protocol",
        help="interference model (default protocol)",
    )
    serve_parser.add_argument(
        "--background",
        metavar="PATH",
        default=None,
        help="JSONL background traffic: one "
        '{"path": [node, ...], "demand_mbps"} object per line',
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="serve query groups on N threads (default: sequential; "
        "answers are identical either way)",
    )
    serve_parser.add_argument(
        "--max-sets",
        type=int,
        default=None,
        help="enumeration safety cap per link union (default unlimited)",
    )
    serve_parser.add_argument(
        "--cache-capacity",
        type=int,
        default=64,
        help="LRU bound of the enumeration and master-LP caches "
        "(default 64 entries each)",
    )
    serve_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the decisions and the summary as JSON to PATH "
        "('-' = stdout, after the table)",
    )
    serve_parser.add_argument(
        "--slow-log",
        nargs="?",
        type=int,
        const=10,
        default=None,
        metavar="K",
        help="print the flight recorder's K slowest queries after the "
        "table (default 10 when the flag is given bare)",
    )
    serve_parser.add_argument(
        "--explain",
        action="store_true",
        help="attach a dual-certificate explanation (binding cliques, "
        "marginal bandwidth, crowd-out) to every decision; rejections "
        "are explained after the table and --json embeds the full "
        "explanation per decision",
    )
    _add_metrics_flags(serve_parser)
    serve_parser.add_argument(
        "--trace",
        action="store_true",
        help="print a span tree and serve/solver counters after the table",
    )
    serve_parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write the machine-readable run report to PATH ('-' = stdout)",
    )
    serve_parser.add_argument(
        "--history-dir",
        metavar="DIR",
        default=None,
        help="run-history store a traced serve run appends its record to "
        f"(default {obs_history.DEFAULT_HISTORY_DIR!r})",
    )
    serve_parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this traced serve run to the run-history store",
    )
    explain_parser = subparsers.add_parser(
        "explain",
        help="explain one admission decision: dual certificate, binding "
        "cliques, crowd-out, and the bottleneck clique drawn over the "
        "topology",
    )
    explain_parser.add_argument(
        "query_id",
        nargs="?",
        default="query",
        help="label of the decision being explained (cosmetic; "
        "default 'query')",
    )
    explain_parser.add_argument(
        "--path",
        required=True,
        metavar="N1,N2,...",
        help="comma-separated node sequence of the candidate path",
    )
    explain_parser.add_argument(
        "--demand",
        type=float,
        default=None,
        metavar="MBPS",
        help="demand to admit; when given, the output leads with the "
        "admit/reject verdict",
    )
    explain_parser.add_argument(
        "--topology",
        metavar="PATH",
        default=None,
        help="explain over this saved topology (repro.net.io JSON; "
        "default: the paper's 30-node random topology)",
    )
    explain_parser.add_argument(
        "--paper-seed",
        type=int,
        default=8,
        help="placement seed of the default paper topology (default 8)",
    )
    explain_parser.add_argument(
        "--model",
        choices=("protocol", "physical"),
        default="protocol",
        help="interference model (default protocol)",
    )
    explain_parser.add_argument(
        "--background",
        metavar="PATH",
        default=None,
        help="JSONL background traffic: one "
        '{"path": [node, ...], "demand_mbps"} object per line',
    )
    explain_parser.add_argument(
        "--max-sets",
        type=int,
        default=None,
        help="enumeration safety cap (default unlimited)",
    )
    explain_parser.add_argument(
        "--no-map",
        action="store_true",
        help="skip the ASCII topology rendering of the bottleneck clique",
    )
    explain_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the explanation as JSON to PATH ('-' = stdout)",
    )
    obs_parser = subparsers.add_parser(
        "obs",
        help="inspect the run-history store and diff recorded traces",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command")

    def add_history_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--history-dir",
            metavar="DIR",
            default=None,
            help="run-history store to read "
            f"(default {obs_history.DEFAULT_HISTORY_DIR!r})",
        )

    history_parser = obs_sub.add_parser(
        "history",
        help="table of recorded runs (or one full record); "
        "'history prune' compacts the store",
    )
    add_history_dir(history_parser)
    history_parser.add_argument(
        "run_id",
        nargs="?",
        default=None,
        help="show this run's full record (id, unique prefix, 'last', "
        "'-2', ...) instead of the table; the literal 'prune' compacts "
        "the store instead (see --keep / --max-age)",
    )
    history_parser.add_argument(
        "--limit",
        type=int,
        default=20,
        help="rows in the table (default 20, newest kept)",
    )
    history_parser.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="N",
        help="with 'prune': keep only the newest N records",
    )
    history_parser.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="DAYS",
        help="with 'prune': drop records older than DAYS days",
    )
    last_parser = obs_sub.add_parser(
        "last", help="show the most recent recorded run"
    )
    add_history_dir(last_parser)
    diff_parser = obs_sub.add_parser(
        "diff",
        help="counter/span deltas between two recorded runs",
    )
    add_history_dir(diff_parser)
    diff_parser.add_argument(
        "runs",
        nargs="*",
        metavar="RUN",
        help="two run refs (baseline, candidate) — ids, unique prefixes, "
        "'last', '-2', ...; default: the previous run vs the last",
    )
    diff_parser.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        help="allowed relative counter growth before a regression is "
        "flagged (default 0: counters are deterministic)",
    )
    diff_parser.add_argument(
        "--span-threshold",
        type=float,
        default=None,
        help="also gate top-level span seconds at this relative growth "
        "(default: spans are reported, never gated — wall time is noisy)",
    )
    diff_parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the diff flags a regression (default: report "
        "and exit 0)",
    )
    tail_parser = obs_sub.add_parser(
        "tail",
        help="render the newest snapshot of a metrics JSONL stream "
        "(--metrics-jsonl output)",
    )
    tail_parser.add_argument(
        "path",
        metavar="PATH",
        help="metrics JSONL stream written by --metrics-jsonl",
    )
    tail_parser.add_argument(
        "-f",
        "--follow",
        action="store_true",
        help="keep watching the stream and re-render on new snapshots",
    )
    tail_parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="poll interval with --follow (default 1)",
    )
    return parser


def _configured_runner(experiment_id: str, args: argparse.Namespace):
    """Resolve an experiment, honouring the workload flags when given."""
    workers = getattr(args, "workers", None)
    tile_size = getattr(args, "tile_size", None)
    if experiment_id == "x7" and tile_size is not None:
        from repro.experiments.scale_study import run_scale_study

        def call_scale():
            from repro.experiments.failures import tag_experiment

            recorder = get_recorder()
            with recorder.span("experiment.x7"), tag_experiment("x7"):
                result = run_scale_study(tile_size=tile_size)
            recorder.count("experiment.runs")
            return result

        return call_scale
    overrides = {
        "topology_seed": args.topology_seed,
        "flow_seed": args.flow_seed,
        "n_flows": args.flows,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if not overrides or experiment_id not in _CONFIGURABLE:
        return lambda: run_experiment(experiment_id, workers=workers)
    from repro.experiments.extensions import (
        run_admission_accuracy,
        run_joint_routing,
    )
    from repro.experiments.fig2_paths import run_fig2
    from repro.experiments.fig3_routing import Fig3Config, run_fig3
    from repro.experiments.fig4_estimation import run_fig4

    config = Fig3Config(**overrides)
    runners = {
        "e3": run_fig2,
        "e4": run_fig3,
        "e5": run_fig4,
        "x1": run_admission_accuracy,
        "x2": run_joint_routing,
    }
    def call():
        # The override path bypasses run_experiment, so it opens the
        # experiment span, failure tag, and run tally itself to keep
        # traces, failure reports, and history records uniform.
        from repro.experiments.failures import tag_experiment

        recorder = get_recorder()
        with recorder.span(f"experiment.{experiment_id}"), \
                tag_experiment(experiment_id):
            if workers is not None and experiment_id in {"e3", "e4", "e5"}:
                result = runners[experiment_id](config, workers=workers)
            else:
                result = runners[experiment_id](config)
        recorder.count("experiment.runs")
        return result

    return call


def _list_experiments() -> str:
    width = max(len(eid) for eid in EXPERIMENTS)
    lines = [
        f"  {spec.experiment_id:<{width}} "
        f"{'*' if spec.supports_workers else ' '} {spec.description}"
        for spec in EXPERIMENTS.values()
    ]
    lines.append("")
    lines.append("  * accepts --workers N (parallel sweep, identical output)")
    return "\n".join(["available experiments:"] + lines)


def _resolve_history_store(history_dir: Optional[str]):
    """The history store a command should use (CLI flag over default)."""
    return obs_history.HistoryStore(
        history_dir if history_dir is not None
        else obs_history.DEFAULT_HISTORY_DIR
    )


def _obs_tail(args: argparse.Namespace) -> int:
    """The ``repro obs tail`` command: render a metrics JSONL stream."""
    from repro.obs.metrics import format_metrics_table, read_metrics_jsonl

    last_key = None
    try:
        while True:
            try:
                records = read_metrics_jsonl(args.path)
            except OSError as error:
                if not args.follow:
                    print(str(error), file=sys.stderr)
                    return 2
                records = []
            if records:
                key = (len(records), records[-1].get("ts"))
                if key != last_key:
                    last_key = key
                    print(format_metrics_table(records[-1]))
            elif not args.follow:
                print(
                    f"{args.path}: no metrics snapshots", file=sys.stderr
                )
                return 2
            if not args.follow:
                return 0
            time.sleep(max(0.05, args.interval))
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # Downstream (head, less) closed the pipe; that's a clean stop.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


def _obs_main(args: argparse.Namespace) -> int:
    """The ``repro obs`` group: history table, last record, trace diff."""
    if args.obs_command == "tail":
        return _obs_tail(args)
    store = _resolve_history_store(getattr(args, "history_dir", None))
    if args.obs_command in (None, "history"):
        run_id = getattr(args, "run_id", None)
        if run_id == "prune":
            # Run ids are timestamp-prefixed, so the literal can never
            # shadow a real record.
            if args.keep is None and args.max_age is None:
                print(
                    "repro obs history prune needs --keep N and/or "
                    "--max-age DAYS",
                    file=sys.stderr,
                )
                return 2
            try:
                stats = store.prune(
                    keep=args.keep, max_age_days=args.max_age
                )
            except (OSError, ValueError) as error:
                print(str(error), file=sys.stderr)
                return 2
            print(
                f"pruned {store.path}: kept {stats['kept']}, removed "
                f"{stats['removed']}, dropped {stats['corrupt_dropped']} "
                "corrupt line(s)"
            )
            return 0
        records = store.runs()
        if run_id is None:
            limit = getattr(args, "limit", 20)
            print(obs_history.format_history_table(records, limit=limit))
            return 0
        try:
            record = store.resolve(run_id, records)
        except LookupError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(json.dumps(record, indent=2))
        return 0
    if args.obs_command == "last":
        record = store.last()
        if record is None:
            print(
                f"history store {store.path} has no recorded runs",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(record, indent=2))
        return 0
    # diff
    records = store.runs()
    refs = args.runs
    if refs and len(refs) != 2:
        print(
            "repro obs diff takes exactly two run refs (or none for "
            "'previous vs last')",
            file=sys.stderr,
        )
        return 2
    if not refs:
        if len(records) < 2:
            print(
                f"history store {store.path} holds "
                f"{len(records)} run(s); nothing to diff yet"
            )
            return 0
        refs = ["-2", "-1"]
    try:
        baseline = store.resolve(refs[0], records)
        candidate = store.resolve(refs[1], records)
    except LookupError as error:
        print(str(error), file=sys.stderr)
        return 2
    diff = obs_history.diff_runs(
        baseline,
        candidate,
        counter_threshold=args.threshold,
        span_threshold=args.span_threshold,
    )
    print(obs_history.format_diff(diff))
    if diff["regressions"] and args.strict:
        return 1
    return 0


def _serve_substrate(args: argparse.Namespace):
    """(network, model) for ``repro serve`` from the topology/model flags."""
    from repro.interference.physical import PhysicalInterferenceModel
    from repro.interference.protocol import ProtocolInterferenceModel

    if args.topology is not None:
        from repro.net.io import load_network

        network = load_network(args.topology)
    else:
        from repro.workloads.scenarios import paper_random_topology

        network = paper_random_topology(seed=args.paper_seed)
    model_type = (
        ProtocolInterferenceModel
        if args.model == "protocol"
        else PhysicalInterferenceModel
    )
    return network, model_type(network)


class _LinkSetTrace:
    """A labelled link set render_topology can trace like a path."""

    def __init__(self, label: str, links):
        self.label = label
        self.links = list(links)

    def __iter__(self):
        return iter(self.links)

    def __str__(self) -> str:
        return self.label


def _explain_main(args: argparse.Namespace) -> int:
    """The ``repro explain`` command: one decision, fully attributed."""
    from repro.core.bandwidth import _collect_links
    from repro.errors import TopologyError
    from repro.obs.explain import (
        explain_path_bandwidth,
        explanation_to_dict,
        format_explanation,
    )
    from repro.serve.io import load_background, path_from_nodes

    nodes = [node.strip() for node in args.path.split(",") if node.strip()]
    try:
        network, model = _serve_substrate(args)
        background = (
            load_background(args.background, network)
            if args.background is not None
            else []
        )
        path = path_from_nodes(network, nodes)
    except (OSError, json.JSONDecodeError, ConfigurationError) as error:
        print(str(error), file=sys.stderr)
        return 2

    try:
        result, explanation = explain_path_bandwidth(
            model, path, background, max_sets=args.max_sets
        )
    except ReproError as error:
        print(f"explain: {error}", file=sys.stderr)
        return 1

    bandwidth = result.available_bandwidth
    if args.demand is not None:
        verdict = "admit" if args.demand <= bandwidth else "reject"
        print(
            f"{args.query_id}: {verdict} {args.demand:.3f} Mbps over "
            f"{' -> '.join(nodes)} ({bandwidth:.6f} Mbps available)"
        )
    else:
        print(
            f"{args.query_id}: {bandwidth:.6f} Mbps available over "
            f"{' -> '.join(nodes)}"
        )
    print(format_explanation(explanation))

    if not args.no_map:
        from repro.experiments.ascii_map import render_topology

        traces = [path]
        bottleneck = explanation.bottleneck
        if bottleneck is not None:
            links_by_id = {
                link.link_id: link
                for link in _collect_links(background, path)
            }
            traces.append(
                _LinkSetTrace(
                    "bottleneck clique "
                    f"{{{', '.join(bottleneck.links)}}}",
                    (
                        links_by_id[link_id]
                        for link_id in bottleneck.links
                        if link_id in links_by_id
                    ),
                )
            )
        print()
        try:
            print(render_topology(network, paths=traces))
        except TopologyError as error:
            print(f"(no topology map: {error})")

    if args.json is not None:
        document = {
            "id": args.query_id,
            "path": nodes,
            "demand_mbps": args.demand,
            "available_bandwidth_mbps": bandwidth,
            "explanation": explanation_to_dict(explanation),
        }
        rendered = json.dumps(document, indent=2)
        if args.json == "-":
            print(rendered)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(rendered + "\n")
    return 0


def _bottleneck_block(decisions):
    """The run's dominant-bottleneck history block (``None`` without
    ``--explain`` — unexplained decisions contribute nothing)."""
    from repro.obs.explain import bottleneck_summary

    return bottleneck_summary(
        [decision.explanation for decision in decisions]
    )


def _serve_main(args: argparse.Namespace) -> int:
    """The ``repro serve`` command: answer a JSONL query stream."""
    from repro.fingerprint import fingerprint, network_fingerprint
    from repro.obs.metrics import MetricsFlusher
    from repro.serve import (
        AdmissionService,
        decision_to_dict,
        format_slow_log,
        load_background,
        load_queries,
        summarize_decisions,
    )

    if args.online:
        return _serve_online_main(args)
    if args.queries is None:
        print("serve: --queries is required unless --online", file=sys.stderr)
        return 2

    try:
        network, model = _serve_substrate(args)
        background = (
            load_background(args.background, network)
            if args.background is not None
            else []
        )
        queries = load_queries(args.queries, network)
    except (OSError, json.JSONDecodeError) as error:
        print(str(error), file=sys.stderr)
        return 2
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2
    if not queries:
        print(f"{args.queries}: no queries", file=sys.stderr)
        return 2

    tracing = args.trace or args.trace_json is not None
    exporting = (
        args.metrics_out is not None or args.metrics_jsonl is not None
    )
    recorder = Recorder() if tracing or exporting else None
    flusher = (
        MetricsFlusher(
            recorder,
            openmetrics_path=args.metrics_out,
            jsonl_path=args.metrics_jsonl,
            interval=args.metrics_interval,
        )
        if exporting
        else None
    )
    service_kwargs = {}
    if args.slow_log is not None:
        service_kwargs["slow_log"] = args.slow_log
    started = time.perf_counter()
    try:
        with use_recorder(recorder):
            service = AdmissionService(
                model,
                background,
                max_sets=args.max_sets,
                enum_capacity=args.cache_capacity,
                master_capacity=args.cache_capacity,
                explain=args.explain,
                **service_kwargs,
            )
            if flusher is not None:
                flusher.start()
            decisions = service.submit_many(queries, workers=args.workers)
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 1
    finally:
        if flusher is not None:
            flusher.stop()
    wall_seconds = time.perf_counter() - started
    summary = summarize_decisions(decisions, wall_seconds)

    width = max(len(d.query_id) for d in decisions)
    print(
        f"{'query':<{width}}  {'decision':<8}  {'avail Mbps':>10}  "
        f"{'demand':>7}  {'cache':<6}  {'ms':>8}"
    )
    for decision in decisions:
        print(
            f"{decision.query_id:<{width}}  "
            f"{'admit' if decision.admitted else 'reject':<8}  "
            f"{decision.available_bandwidth_mbps:>10.4f}  "
            f"{decision.demand_mbps:>7.3f}  "
            f"{decision.cache_state:<6}  "
            f"{decision.latency_seconds * 1e3:>8.3f}"
        )
    print(
        f"{summary['queries']} queries "
        f"({summary['admitted']} admitted, {summary['rejected']} rejected) "
        f"in {wall_seconds:.3f}s — "
        f"{summary['queries_per_second']:.1f} q/s, "
        f"p50 {summary['p50_latency_seconds'] * 1e3:.3f} ms, "
        f"p99 {summary['p99_latency_seconds'] * 1e3:.3f} ms"
    )
    if args.slow_log is not None:
        print()
        print(format_slow_log(service.flight))
    if args.explain:
        from repro.obs.explain import format_explanation

        for decision in decisions:
            if decision.admitted or decision.explanation is None:
                continue
            print()
            print(f"why {decision.query_id} was rejected:")
            for line in format_explanation(decision.explanation).splitlines():
                print(f"  {line}")

    if recorder is not None:
        if args.trace:
            print()
            print(format_trace(recorder))
        if tracing and not args.no_history:
            try:
                store = _resolve_history_store(args.history_dir)
                record = obs_history.build_run_record(
                    recorder,
                    experiments=["serve"],
                    label="serve",
                    wall_seconds=wall_seconds,
                    fingerprint=fingerprint(
                        {
                            "topology": network_fingerprint(network),
                            "model": args.model,
                            "queries": [
                                [
                                    query.query_id,
                                    [
                                        link.link_id
                                        for link in query.path
                                    ],
                                    query.demand_mbps,
                                ]
                                for query in queries
                            ],
                        }
                    ),
                    bottleneck=_bottleneck_block(decisions),
                )
                store.append(record)
                print(
                    f"recorded serve run {record['run_id']} -> {store.path}",
                    file=sys.stderr,
                )
            except OSError as error:
                print(
                    f"history store unavailable: {error}", file=sys.stderr
                )
        if args.trace_json is not None:
            write_run_report(
                recorder,
                args.trace_json,
                experiments=["serve"],
                extra={"slow_queries": service.flight.to_dict()},
            )
    if args.json is not None:
        document = {
            "summary": summary,
            "decisions": [decision_to_dict(d) for d in decisions],
        }
        rendered = json.dumps(document, indent=2)
        if args.json == "-":
            print(rendered)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(rendered + "\n")
    return 0


def _serve_online_main(args: argparse.Namespace) -> int:
    """``repro serve --online``: churn stream → incremental controller."""
    from repro.errors import VerificationError
    from repro.fingerprint import fingerprint, network_fingerprint
    from repro.obs.metrics import MetricsFlusher
    from repro.serve import (
        OnlineAdmissionController,
        format_slow_log,
        online_decision_to_dict,
        run_online_session,
        summarize_online_decisions,
    )
    from repro.workloads.scenarios import online_churn_workload

    if args.queries is not None:
        print(
            "serve: --online generates its own event stream; "
            "--queries does not apply",
            file=sys.stderr,
        )
        return 2
    try:
        network, model = _serve_substrate(args)
        workload = online_churn_workload(
            stream_seed=args.stream_seed,
            n_events=args.events,
            network=network,
            model=model,
        )
    except (OSError, json.JSONDecodeError) as error:
        print(str(error), file=sys.stderr)
        return 2
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2

    tracing = args.trace or args.trace_json is not None
    exporting = (
        args.metrics_out is not None or args.metrics_jsonl is not None
    )
    recorder = Recorder() if tracing or exporting else None
    flusher = (
        MetricsFlusher(
            recorder,
            openmetrics_path=args.metrics_out,
            jsonl_path=args.metrics_jsonl,
            interval=args.metrics_interval,
        )
        if exporting
        else None
    )
    controller_kwargs = {}
    if args.slow_log is not None:
        controller_kwargs["slow_log"] = args.slow_log
    try:
        with use_recorder(recorder):
            controller = OnlineAdmissionController(
                model,
                max_sets=args.max_sets,
                enum_capacity=args.cache_capacity,
                master_capacity=args.cache_capacity,
                pin=args.strict,
                explain=args.explain,
                **controller_kwargs,
            )
            if flusher is not None:
                flusher.start()
            decisions, wall_seconds = run_online_session(
                controller, workload.events
            )
    except ConfigurationError as error:
        print(str(error), file=sys.stderr)
        return 2
    except VerificationError as error:
        print(f"serve --online --strict: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 1
    finally:
        if flusher is not None:
            flusher.stop()
    summary = summarize_online_decisions(decisions, wall_seconds)

    width = max((len(d.flow_id) for d in decisions), default=4)
    print(
        f"{'flow':<{width}}  {'decision':<8}  {'avail Mbps':>10}  "
        f"{'demand':>7}  {'cache':<8}  {'carried':>7}  {'ms':>8}"
    )
    for decision in decisions:
        print(
            f"{decision.flow_id:<{width}}  "
            f"{'admit' if decision.admitted else 'reject':<8}  "
            f"{decision.available_bandwidth_mbps:>10.4f}  "
            f"{decision.demand_mbps:>7.3f}  "
            f"{decision.cache_state:<8}  "
            f"{decision.carried_flows:>7}  "
            f"{decision.latency_seconds * 1e3:>8.3f}"
        )
    print(
        f"{len(workload.events)} events, {summary['decisions']} decisions "
        f"({summary['admitted']} admitted, {summary['rejected']} rejected, "
        f"{summary['unrouted']} unrouted) in {wall_seconds:.3f}s — "
        f"{summary['decisions_per_second']:.1f} dec/s, "
        f"p50 {summary['p50_latency_seconds'] * 1e3:.3f} ms, "
        f"p99 {summary['p99_latency_seconds'] * 1e3:.3f} ms"
        + (" [strict: pinned to cold Eq. 6]" if args.strict else "")
    )
    if args.slow_log is not None:
        print()
        print(format_slow_log(controller.flight))
    if args.explain:
        from repro.obs.explain import format_explanation

        for decision in decisions:
            if decision.admitted or decision.explanation is None:
                continue
            print()
            print(f"why {decision.flow_id} was rejected:")
            for line in format_explanation(decision.explanation).splitlines():
                print(f"  {line}")

    if args.decisions_out is not None:
        with open(args.decisions_out, "w", encoding="utf-8") as stream:
            for decision in decisions:
                stream.write(
                    json.dumps(online_decision_to_dict(decision)) + "\n"
                )

    if recorder is not None:
        if args.trace:
            print()
            print(format_trace(recorder))
        if tracing and not args.no_history:
            try:
                store = _resolve_history_store(args.history_dir)
                record = obs_history.build_run_record(
                    recorder,
                    experiments=["serve-online"],
                    label="serve-online",
                    wall_seconds=wall_seconds,
                    fingerprint=fingerprint(
                        {
                            "topology": network_fingerprint(network),
                            "model": args.model,
                            "stream_seed": args.stream_seed,
                            "events": args.events,
                            "strict": bool(args.strict),
                        }
                    ),
                    bottleneck=_bottleneck_block(decisions),
                )
                store.append(record)
                print(
                    f"recorded serve run {record['run_id']} -> {store.path}",
                    file=sys.stderr,
                )
            except OSError as error:
                print(
                    f"history store unavailable: {error}", file=sys.stderr
                )
        if args.trace_json is not None:
            write_run_report(
                recorder,
                args.trace_json,
                experiments=["serve-online"],
                extra={"slow_queries": controller.flight.to_dict()},
            )
    if args.json is not None:
        document = {
            "summary": summary,
            "decisions": [online_decision_to_dict(d) for d in decisions],
        }
        rendered = json.dumps(document, indent=2)
        if args.json == "-":
            print(rendered)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(rendered + "\n")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None or args.command == "list":
        print(_list_experiments())
        return 0
    if args.command == "obs":
        return _obs_main(args)
    if args.command == "serve":
        return _serve_main(args)
    if args.command == "explain":
        return _explain_main(args)
    if args.command == "verify":
        from repro.verify import (
            format_differential,
            format_verification,
            run_differential,
            run_verification,
            write_run_document,
        )

        checks = run_verification()
        print(format_verification(checks))
        recorder = Recorder()
        try:
            with use_recorder(recorder):
                run = run_differential(
                    instances=args.instances,
                    seed=args.seed,
                    profile=args.profile,
                )
        except ConfigurationError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(format_differential(run))
        if args.json is not None:
            write_run_document(args.json, run, counters=recorder.counters)
        paper_ok = all(check.passed for check in checks)
        return 0 if paper_ok and run.passed else 1
    tracing = (
        args.trace
        or args.trace_json is not None
        or args.trace_events is not None
    )
    exporting = (
        args.metrics_out is not None or args.metrics_jsonl is not None
    )
    recorder = (
        Recorder(events=args.trace_events is not None)
        if tracing or exporting
        else None
    )
    flusher = None
    if exporting:
        from repro.obs.metrics import MetricsFlusher

        flusher = MetricsFlusher(
            recorder,
            openmetrics_path=args.metrics_out,
            jsonl_path=args.metrics_jsonl,
            interval=args.metrics_interval,
        ).start()
    exit_code = 0
    ran: List[str] = []
    all_failures: List[object] = []
    started = time.perf_counter()
    if args.inject_faults is not None:
        from repro.testing.faults import inject_faults, plan_from_spec

        try:
            fault_scope = inject_faults(plan_from_spec(args.inject_faults))
        except ConfigurationError as error:
            print(str(error), file=sys.stderr)
            return 2
    else:
        fault_scope = nullcontext()
    with use_recorder(recorder), fault_scope:
        for experiment_id in args.experiments:
            if experiment_id not in EXPERIMENTS:
                print(f"unknown experiment: {experiment_id}", file=sys.stderr)
                exit_code = 2
                continue
            store = None
            if args.checkpoint_dir is not None:
                try:
                    store = CheckpointStore(
                        os.path.join(args.checkpoint_dir, experiment_id),
                        experiment_id,
                    )
                except CheckpointError as error:
                    print(str(error), file=sys.stderr)
                    exit_code = 2
                    continue
                if not args.resume:
                    store.clear_items()
            try:
                with collect_failures() as failures, \
                        use_checkpoint_store(store):
                    result = _configured_runner(experiment_id, args)()
            except ConfigurationError as error:
                print(str(error), file=sys.stderr)
                exit_code = 2
                continue
            except ReproError as error:
                print(f"{experiment_id}: {error}", file=sys.stderr)
                exit_code = max(exit_code, 1)
                continue
            ran.append(experiment_id)
            print(result.table())
            print()
            if failures:
                all_failures.extend(failures)
                print(format_failures(failures))
                print()
                if args.strict:
                    exit_code = max(exit_code, 1)
    wall_seconds = time.perf_counter() - started
    if flusher is not None:
        flusher.stop()
    if recorder is not None:
        if args.trace:
            print(format_trace(recorder))
            print()
        if tracing and not args.no_history and ran:
            try:
                store = _resolve_history_store(args.history_dir)
                record = obs_history.build_run_record(
                    recorder,
                    experiments=ran,
                    label="run",
                    wall_seconds=wall_seconds,
                    fingerprint=obs_history.args_fingerprint(
                        {
                            "experiments": list(args.experiments),
                            "topology_seed": args.topology_seed,
                            "flow_seed": args.flow_seed,
                            "flows": args.flows,
                            "workers": args.workers,
                            "tile_size": args.tile_size,
                        }
                    ),
                    failures=len(all_failures),
                )
                store.append(record)
                print(
                    f"recorded run {record['run_id']} -> {store.path}",
                    file=sys.stderr,
                )
            except OSError as error:
                # History is telemetry: an unwritable store must never
                # fail a run that produced its tables.
                print(
                    f"history store unavailable: {error}", file=sys.stderr
                )
        # Stdout-bound JSON goes last, after tables, trace text, and any
        # failure report — pipelines can split on the final document.
        if args.trace_json is not None:
            write_run_report(
                recorder,
                args.trace_json,
                experiments=ran,
                failures=all_failures,
            )
        if args.trace_events is not None:
            write_trace_events(recorder, args.trace_events)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
