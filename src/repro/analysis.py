"""Summary statistics for repeated stochastic runs.

The CSMA/CA simulator and the churn workload are stochastic; a single
seed is an anecdote.  These helpers aggregate repeated runs into the
numbers a paper table needs — mean, standard deviation, and a bootstrap
percentile confidence interval — without pulling in heavier statistics
dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng

__all__ = ["Summary", "summarize", "bootstrap_ci", "repeat"]


@dataclass(frozen=True)
class Summary:
    """Mean / spread / confidence interval of one measured quantity."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.4g} ± {self.std:.2g} "
            f"(95% CI [{self.ci_low:.4g}, {self.ci_high:.4g}], n={self.n})"
        )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI of the mean.

    Non-parametric, so it stays honest for the skewed distributions MAC
    measurements produce.  Deterministic by default (fixed resampling
    seed) so experiment tables are reproducible.
    """
    if len(values) == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    data = np.asarray(values, dtype=float)
    if len(data) == 1:
        return float(data[0]), float(data[0])
    rng = make_rng(seed)
    indices = rng.integers(0, len(data), size=(resamples, len(data)))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


def summarize(
    values: Sequence[float],
    confidence: float = 0.95,
    seed: SeedLike = 0,
) -> Summary:
    """Mean, sample standard deviation and bootstrap CI of ``values``."""
    if len(values) == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    data = np.asarray(values, dtype=float)
    mean = float(data.mean())
    std = float(data.std(ddof=1)) if len(data) > 1 else 0.0
    low, high = bootstrap_ci(data, confidence=confidence, seed=seed)
    return Summary(
        n=len(data), mean=mean, std=std, ci_low=low, ci_high=high
    )


def repeat(
    runner: Callable[[int], float],
    seeds: Sequence[int],
) -> Summary:
    """Run ``runner(seed)`` per seed and summarise the returned values."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    return summarize([runner(seed) for seed in seeds])
