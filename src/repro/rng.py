"""Seeded random-number helpers.

Every stochastic component of the library (topology generation, flow
selection, the CSMA/CA simulator) accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
"seed or generator" convention uniform and makes experiments reproducible by
construction.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["SeedLike", "make_rng", "spawn_rng"]

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a nondeterministic generator, an ``int`` a deterministic
    one, and an existing generator is passed through unchanged (so callers
    can share a stream across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when one experiment needs several independent streams (e.g. node
    placement vs. flow endpoints) that must not perturb each other when one
    of them draws a different number of samples.
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))
