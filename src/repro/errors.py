"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch a single base class.  Subclasses carry enough structured context
(offending object, expected range, ...) for programmatic handling, while the
message stays human readable.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "LinkError",
    "PathError",
    "RateError",
    "InterferenceError",
    "ScheduleError",
    "InfeasibleProblemError",
    "SolverError",
    "SolverAttempt",
    "CheckpointError",
    "RoutingError",
    "EstimationError",
    "SimulationError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object received an invalid parameter."""


class TopologyError(ReproError, ValueError):
    """A network topology is malformed (unknown node, duplicate link, ...)."""


class LinkError(TopologyError):
    """A link is invalid: self loop, unknown endpoints, or out of range."""


class PathError(TopologyError):
    """A path is invalid: disconnected hops, repeated nodes, unknown links."""


class RateError(ReproError, ValueError):
    """A rate value is not part of the configured rate table."""


class InterferenceError(ReproError):
    """An interference model was queried with objects it does not know."""


class ScheduleError(ReproError, ValueError):
    """A link schedule is malformed or violates its own invariants."""


class InfeasibleProblemError(ReproError):
    """A bandwidth/scheduling problem admits no feasible solution.

    This is raised, for example, when background demands alone are not
    schedulable, so no available-bandwidth question is well posed.
    """

    def __init__(self, message: str, residual: float = float("nan")):
        super().__init__(message)
        #: How much airtime (> 0) is missing to serve the demands, when known.
        self.residual = residual


class SolverAttempt:
    """Record of one solver attempt inside the retry/fallback chain.

    Carried by :class:`SolverError` so callers (and failure reports) can
    see exactly which methods were tried, with what options, and how each
    one failed before the error was raised.
    """

    __slots__ = ("method", "options", "status", "message")

    def __init__(self, method, options=None, status=None, message=""):
        self.method = method
        self.options = dict(options) if options else {}
        self.status = status
        self.message = message

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "options": self.options,
            "status": self.status,
            "message": self.message,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolverAttempt(method={self.method!r}, status={self.status!r}, "
            f"message={self.message!r})"
        )


class SolverError(ReproError, RuntimeError):
    """The underlying LP solver failed for a reason other than infeasibility.

    When raised by the retry/fallback chain of
    :meth:`repro.core.lp.LinearProgram.solve`, ``attempts`` holds one
    :class:`SolverAttempt` per method tried (in order), so the failure
    context survives into logs and failure reports.
    """

    def __init__(self, message: str, attempts=None):
        super().__init__(message)
        #: The failed attempts (:class:`SolverAttempt` list), possibly empty.
        self.attempts = list(attempts) if attempts else []


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint store is unusable (wrong experiment, bad manifest)."""


class RoutingError(ReproError):
    """No route satisfying the metric/constraints could be found."""

    def __init__(self, message: str, source=None, destination=None):
        super().__init__(message)
        self.source = source
        self.destination = destination


class EstimationError(ReproError):
    """An available-bandwidth estimator received inconsistent inputs."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event MAC simulator reached an inconsistent state."""


class VerificationError(ReproError):
    """A differential-verification reference was asked for an instance it
    cannot handle exactly (e.g. an exhaustive enumeration over its cap).

    Never raised for an invariant *violation* — violations are data, not
    errors; they are reported in the verification run's outcome table.
    """
