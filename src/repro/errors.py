"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch a single base class.  Subclasses carry enough structured context
(offending object, expected range, ...) for programmatic handling, while the
message stays human readable.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "LinkError",
    "PathError",
    "RateError",
    "InterferenceError",
    "ScheduleError",
    "InfeasibleProblemError",
    "SolverError",
    "RoutingError",
    "EstimationError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object received an invalid parameter."""


class TopologyError(ReproError, ValueError):
    """A network topology is malformed (unknown node, duplicate link, ...)."""


class LinkError(TopologyError):
    """A link is invalid: self loop, unknown endpoints, or out of range."""


class PathError(TopologyError):
    """A path is invalid: disconnected hops, repeated nodes, unknown links."""


class RateError(ReproError, ValueError):
    """A rate value is not part of the configured rate table."""


class InterferenceError(ReproError):
    """An interference model was queried with objects it does not know."""


class ScheduleError(ReproError, ValueError):
    """A link schedule is malformed or violates its own invariants."""


class InfeasibleProblemError(ReproError):
    """A bandwidth/scheduling problem admits no feasible solution.

    This is raised, for example, when background demands alone are not
    schedulable, so no available-bandwidth question is well posed.
    """

    def __init__(self, message: str, residual: float = float("nan")):
        super().__init__(message)
        #: How much airtime (> 0) is missing to serve the demands, when known.
        self.residual = residual


class SolverError(ReproError, RuntimeError):
    """The underlying LP solver failed for a reason other than infeasibility."""


class RoutingError(ReproError):
    """No route satisfying the metric/constraints could be found."""

    def __init__(self, message: str, source=None, destination=None):
        super().__init__(message)
        self.source = source
        self.destination = destination


class EstimationError(ReproError):
    """An available-bandwidth estimator received inconsistent inputs."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event MAC simulator reached an inconsistent state."""
