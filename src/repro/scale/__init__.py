"""Scaling layer: interference tiles and optional compiled kernels.

Everything in :mod:`repro.core` is exact and global; this package is the
first layer that trades exactness for scale, so every approximation comes
with an oracle-guarded bound:

* :mod:`repro.scale.tiles` — interference-tile decomposition with a
  bracketing ``[lower_bound, upper_bound]`` estimate of Eq. 6 (verified
  against the exact optimum by :mod:`repro.verify` wherever exact
  enumeration is tractable);
* :mod:`repro.scale.kernels` — opt-in vectorized / numba-compiled
  replacements for the enumeration hot loops, pinned bit-identical to the
  pure-Python reference paths.
"""

from repro.scale.kernels import (
    RateSelector,
    cliques_u64,
    compiled_cliques,
    compiled_kernels_available,
    enable_compiled_kernels,
    kernels_active,
)
from repro.scale.tiles import (
    Tile,
    TileConfig,
    TiledPathEstimate,
    decompose_path,
    tiled_path_bandwidth,
)

__all__ = [
    "TileConfig",
    "Tile",
    "TiledPathEstimate",
    "decompose_path",
    "tiled_path_bandwidth",
    "compiled_kernels_available",
    "enable_compiled_kernels",
    "kernels_active",
    "compiled_cliques",
    "cliques_u64",
    "RateSelector",
]
