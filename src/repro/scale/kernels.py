"""Optional compiled kernels for the two remaining enumeration hot loops.

Profiling the tiled solver at 500+ nodes leaves two Python-level hot loops:

* **cumulative-SINR feasibility** — :func:`repro.core.independent_sets`'s
  DFS re-derives every subset member's best rate with a scalar
  threshold scan per member;
* **bitmask clique expansion** — Bron–Kerbosch over arbitrary-precision
  Python integers, also the column-generation pricing oracle's inner loop.

This module provides drop-in replacements: a vectorized (numpy) rate
selector for the feasibility loop and a fixed-width ``uint64``
Bron–Kerbosch for graphs of at most 64 vertices.  When :mod:`numba` is
importable the ``uint64`` search and the rate selector are JIT-compiled;
without it the rate selector still runs as pure numpy and the clique
search falls back to the pure-Python reference implementation.

Everything here is **opt-in** (:func:`enable_compiled_kernels`) and
bit-identical to the pure-Python reference paths by construction: the rate
selector performs the same IEEE division and threshold comparison the
scalar loop does (division and comparison are correctly rounded, so
vectorization cannot change the chosen rate), and the ``uint64`` search
mirrors the reference's pivot rule, branch order, and DFS-node count
exactly.  ``tests/test_scale.py`` pins both equalities, which is what
keeps :mod:`repro.verify`'s pure-Python path authoritative.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "compiled_kernels_available",
    "enable_compiled_kernels",
    "kernels_active",
    "compiled_cliques",
    "cliques_u64",
    "RateSelector",
]

#: Module-level switch; OFF by default so the pure-Python reference paths
#: (and their obs counters) stay byte-for-byte unchanged unless a caller
#: opts in.
_ENABLED = False

_NUMBA_CACHE: Optional[bool] = None


def compiled_kernels_available() -> bool:
    """Whether :mod:`numba` is importable (JIT compilation possible)."""
    global _NUMBA_CACHE
    if _NUMBA_CACHE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_CACHE = True
        except ImportError:
            _NUMBA_CACHE = False
    return _NUMBA_CACHE


def enable_compiled_kernels(enabled: bool = True) -> bool:
    """Toggle the compiled kernels; returns whether they are now active.

    Activation is independent of :mod:`numba`: without it the rate
    selector runs as pure numpy and the clique search stays on the
    pure-Python reference, so enabling is always safe.
    """
    global _ENABLED
    _ENABLED = bool(enabled)
    return kernels_active()


def kernels_active() -> bool:
    """Whether callers should dispatch to the kernels in this module."""
    return _ENABLED


# -- uint64 Bron–Kerbosch ------------------------------------------------------


def _popcount(x: int) -> int:
    count = 0
    while x:
        x &= x - 1
        count += 1
    return count


def cliques_u64(
    adjacency: List[int], count: int, start: int
) -> Tuple[List[int], int]:
    """Fixed-width Bron–Kerbosch; requires ``count <= 64``.

    Mirrors :func:`repro.core.independent_sets._maximal_cliques_bitset`
    exactly — same pivot rule (first vertex, in ascending low-bit order,
    with a strictly larger candidate cover), same branch order, same
    DFS-node accounting — so its output is byte-identical to the
    reference's.  Written in the restricted style :mod:`numba` can compile
    in ``nopython`` mode; interpreted it is the testable twin of the
    jitted function.

    Returns ``(clique_masks, dfs_nodes)``.
    """
    cliques: List[int] = []
    dfs_nodes = 0

    def expand(current: int, candidates: int, excluded: int) -> None:
        nonlocal dfs_nodes
        dfs_nodes += 1
        if not candidates and not excluded:
            cliques.append(current)
            return
        pivot_pool = candidates | excluded
        best_cover = -1
        pivot_adjacency = 0
        pool = pivot_pool
        while pool:
            low_bit = pool & -pool
            pool ^= low_bit
            cover = candidates & adjacency[low_bit.bit_length() - 1]
            cover_size = _popcount(cover)
            if cover_size > best_cover:
                best_cover = cover_size
                pivot_adjacency = cover
        branch = candidates & ~pivot_adjacency
        while branch:
            low_bit = branch & -branch
            branch ^= low_bit
            vertex_adjacency = adjacency[low_bit.bit_length() - 1]
            expand(
                current | low_bit,
                candidates & vertex_adjacency,
                excluded & vertex_adjacency,
            )
            candidates ^= low_bit
            excluded |= low_bit

    if start:
        expand(0, start, 0)
    return cliques, dfs_nodes


_JITTED_CLIQUES = None


def _jitted_cliques():
    """Lazily build the numba-compiled uint64 search (None without numba)."""
    global _JITTED_CLIQUES
    if _JITTED_CLIQUES is not None or not compiled_kernels_available():
        return _JITTED_CLIQUES
    from numba import njit  # pragma: no cover - numba not in CI image

    @njit(cache=True)  # pragma: no cover - numba not in CI image
    def search(adjacency, count, start):
        # Iterative Bron–Kerbosch on uint64 masks with an explicit stack;
        # the visit order reproduces the recursive reference exactly.
        capacity = 4 * (count + 2)
        stack_cur = np.zeros(capacity, dtype=np.uint64)
        stack_cand = np.zeros(capacity, dtype=np.uint64)
        stack_excl = np.zeros(capacity, dtype=np.uint64)
        stack_branch = np.zeros(capacity, dtype=np.uint64)
        stack_state = np.zeros(capacity, dtype=np.int64)
        cliques = []
        dfs_nodes = 0
        top = 0
        stack_cur[0] = np.uint64(0)
        stack_cand[0] = start
        stack_excl[0] = np.uint64(0)
        stack_state[0] = 0
        while top >= 0:
            state = stack_state[top]
            if state == 0:
                dfs_nodes += 1
                candidates = stack_cand[top]
                excluded = stack_excl[top]
                if candidates == np.uint64(0) and excluded == np.uint64(0):
                    cliques.append(stack_cur[top])
                    top -= 1
                    continue
                pool = candidates | excluded
                best_cover = -1
                pivot_adjacency = np.uint64(0)
                while pool != np.uint64(0):
                    low_bit = pool & (~pool + np.uint64(1))
                    pool ^= low_bit
                    index = 0
                    probe = low_bit
                    while probe > np.uint64(1):
                        probe >>= np.uint64(1)
                        index += 1
                    cover = candidates & adjacency[index]
                    cover_size = 0
                    c = cover
                    while c != np.uint64(0):
                        c &= c - np.uint64(1)
                        cover_size += 1
                    if cover_size > best_cover:
                        best_cover = cover_size
                        pivot_adjacency = cover
                stack_branch[top] = candidates & ~pivot_adjacency
                stack_state[top] = 1
            else:
                branch = stack_branch[top]
                if branch == np.uint64(0):
                    top -= 1
                    continue
                low_bit = branch & (~branch + np.uint64(1))
                stack_branch[top] = branch ^ low_bit
                index = 0
                probe = low_bit
                while probe > np.uint64(1):
                    probe >>= np.uint64(1)
                    index += 1
                vertex_adjacency = adjacency[index]
                child_cur = stack_cur[top] | low_bit
                child_cand = stack_cand[top] & vertex_adjacency
                child_excl = stack_excl[top] & vertex_adjacency
                stack_cand[top] = stack_cand[top] ^ low_bit
                stack_excl[top] = stack_excl[top] | low_bit
                top += 1
                stack_cur[top] = child_cur
                stack_cand[top] = child_cand
                stack_excl[top] = child_excl
                stack_state[top] = 0
        return cliques, dfs_nodes

    _JITTED_CLIQUES = search
    return _JITTED_CLIQUES


def compiled_cliques(
    adjacency: List[int], count: int, start: int
) -> Optional[Tuple[List[int], int]]:
    """JIT-compiled clique search, or ``None`` when the caller should use
    the pure-Python reference (kernels off, graph too wide, or no numba).
    """
    if not _ENABLED or count > 64 or not compiled_kernels_available():
        return None
    search = _jitted_cliques()
    if search is None:  # pragma: no cover - defensive
        return None
    masks = np.array(
        [np.uint64(mask) for mask in adjacency], dtype=np.uint64
    )  # pragma: no cover - numba not in CI image
    raw, dfs_nodes = search(
        masks, count, np.uint64(start)
    )  # pragma: no cover - numba not in CI image
    return [int(mask) for mask in raw], int(
        dfs_nodes
    )  # pragma: no cover - numba not in CI image


# -- vectorized cumulative rate selection --------------------------------------


class RateSelector:
    """Vectorized per-member best-rate selection for Eq. 3 feasibility.

    Precomputes a threshold-padded matrix over the enumeration's link
    entries; :meth:`choose` then answers "which rate does each subset
    member get under this accumulated interference" with one numpy
    evaluation instead of a Python loop over members and rates.

    Rate tables are fastest-first with descending SINR thresholds, so the
    first satisfied threshold is the scalar loop's answer; division and
    ``>=`` are correctly-rounded elementwise operations, so the vectorized
    choice is bit-identical to the scalar one.
    """

    def __init__(self, entries, power: np.ndarray, noise: float):
        self.senders = np.array(
            [entry.sender_index for entry in entries], dtype=np.intp
        )
        self.receivers = np.array(
            [entry.receiver_index for entry in entries], dtype=np.intp
        )
        self.signals = np.array(
            [entry.signal_mw for entry in entries], dtype=float
        )
        self.self_power = np.array(
            [
                power[entry.sender_index, entry.receiver_index]
                for entry in entries
            ],
            dtype=float,
        )
        width = max(
            (len(entry.thresholds) for entry in entries), default=0
        )
        thresholds = np.full((len(entries), max(width, 1)), np.inf)
        for row, entry in enumerate(entries):
            thresholds[row, : len(entry.thresholds)] = entry.thresholds
        self.thresholds = thresholds
        self.noise = noise

    def choose(
        self, subset: List[int], acc: np.ndarray
    ) -> Optional[np.ndarray]:
        """Rate indices for ``subset`` under interference ``acc``.

        ``acc[j]`` is the summed received power at node ``j`` from all of
        the subset's senders.  Returns the per-member index into each
        entry's ``rates`` tuple, or ``None`` when some member keeps no
        rate (the subset is infeasible).
        """
        index = np.asarray(subset, dtype=np.intp)
        interference = acc[self.receivers[index]] - self.self_power[index]
        ratio = self.signals[index] / (interference + self.noise)
        satisfied = ratio[:, None] >= self.thresholds[index]
        if not satisfied.any(axis=1).all():
            return None
        return satisfied.argmax(axis=1)
