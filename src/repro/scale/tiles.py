"""Interference-tile decomposition for path estimates at 1000+ nodes.

The paper's Eq. 6 needs the maximal rate-coupled independent sets of the
*whole* involved link set — affordable on the 30-node evaluation topology,
hopeless past a few hundred nodes.  But interference is local: a link only
constrains links within its interference radius, and a path's conflict
structure is a chain of **local interference cliques** (Section 4's
consecutive-run structure, :func:`repro.estimation.local_interference_cliques`).

This module exploits that locality:

* :func:`decompose_path` partitions the new path into **tiles** — merged
  maximal runs of consecutive mutually-conflicting path links, capped at
  :attr:`TileConfig.tile_size` links per tile, each extended with the
  background links that conflict with (or, with
  :attr:`TileConfig.radius_m`, lie within radius of) the tile's path links;
* :func:`tiled_path_bandwidth` solves one Eq. 6 LP **per tile** over only
  the tile's couple set and stitches the results into a two-sided estimate:

  - **upper bound** — the minimum (bottleneck) of the per-tile optima.
    Each tile LP is a relaxation of the global problem: the projection of
    any globally feasible schedule onto a tile's links stays feasible
    (dropping links only raises SINRs, and by Prop. 3 dominance the tile's
    maximal-set family covers every projected column), so no tile optimum
    can undercut the global one.
  - **lower bound** — the paper's Section 3.3 restricted-column bound: one
    *global* Eq. 6 LP whose columns are the union of the tiles' locally
    enumerated sets (an independent set is a property of its members only,
    so tile-local sets are valid global columns), residual columns over the
    background links no tile covers (windowed enumerations stitched into
    cross-window sets wherever :meth:`~repro.interference.base.InterferenceModel.is_independent`
    confirms the union — without them far-apart background flows would get
    no spatial reuse and the restricted LP could go infeasible), and a
    standalone-rate singleton for every involved link still uncovered.

  When a single tile covers every involved link, both bounds collapse onto
  the exact Eq. 6 construction — same enumeration, same LP, bit-identical
  result; :mod:`repro.verify` pins ``tiled-LB ≤ exact ≤ tiled-UB`` on every
  tractable instance family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bandwidth import (
    _collect_links,
    available_path_bandwidth,
    build_path_bandwidth_lp,
    link_demands_from_paths,
)
from repro.core.independent_sets import (
    RateIndependentSet,
    enumerate_maximal_independent_sets,
)
from repro.errors import InfeasibleProblemError
from repro.estimation.local_cliques import local_interference_cliques
from repro.interference.base import InterferenceModel, LinkRate
from repro.net.link import Link
from repro.net.path import Path
from repro.obs import get_recorder
from repro.obs.explain import explain_solution
from repro.phy.rates import Rate

__all__ = [
    "TileConfig",
    "Tile",
    "TileAttribution",
    "TiledPathEstimate",
    "decompose_path",
    "tiled_path_bandwidth",
]


@dataclass(frozen=True)
class TileConfig:
    """Knobs of the tile decomposition.

    Attributes:
        tile_size: Target maximum number of *path* links per tile; adjacent
            maximal runs are merged while their union stays within it.  A
            single run longer than ``tile_size`` still becomes one tile —
            splitting a clique would break the upper bound's relaxation
            argument.
        max_sets: Per-tile enumeration cap, forwarded to
            :func:`~repro.core.independent_sets.enumerate_maximal_independent_sets`.
        radius_m: Optional geometric prefilter: background links whose
            endpoints all lie farther than this from every tile path
            endpoint are excluded before the exact conflict test.  ``None``
            (default) uses conflicts only, which works for abstract
            topologies too.
    """

    tile_size: int = 8
    max_sets: Optional[int] = None
    radius_m: Optional[float] = None


@dataclass(frozen=True)
class Tile:
    """One tile: a window of path links plus its interfering background."""

    #: Position in the decomposition, left to right along the path.
    index: int
    #: First and last path-link index covered (inclusive).
    start: int
    end: int
    #: The tile's couple set — path and background links, in the same
    #: stable order the global Eq. 6 construction uses.
    links: Tuple[Link, ...]
    #: The tile's new-path links (get the ``-f`` demand coefficient).
    new_links: Tuple[Link, ...]

    @property
    def path_link_count(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class TileAttribution:
    """Provenance of the upper bound: the bottleneck tile's binding clique.

    Derived from the bottleneck tile's own dual solution — the clique is
    the top contention region of that tile's Eq. 6 LP (same grouping and
    fingerprint as :func:`repro.obs.explain.explain_solution`), so a
    tiled estimate names *where* the bracket pinches, not just its value.
    """

    #: Index of the bottleneck tile in the decomposition.
    tile: int
    #: Binding link ids of the tile's top contention region (sorted);
    #: empty when the airtime budget alone limits the tile.
    clique_links: Tuple[str, ...]
    #: Total demand-row shadow price over ``clique_links`` (Mbps/Mbps).
    shadow_price: float
    #: Dual of the tile's airtime row (Mbps per unit airtime).
    airtime_price: float
    #: Bottleneck fingerprint — comparable with decision explanations'
    #: :attr:`~repro.obs.explain.Explanation.bottleneck_fingerprint`.
    fingerprint: str


@dataclass(frozen=True)
class TiledPathEstimate:
    """Two-sided available-bandwidth estimate from the tile decomposition."""

    #: Section 3.3 restricted-column lower bound, in Mbps.
    lower_bound: float
    #: Bottleneck-tile (minimum per-tile Eq. 6 optimum) upper bound, Mbps.
    upper_bound: float
    #: Per-tile Eq. 6 optima, aligned with ``tiles``.
    tile_optima: Tuple[float, ...]
    #: The decomposition itself.
    tiles: Tuple[Tile, ...]
    #: Index of the bottleneck (minimum-optimum) tile.
    bottleneck: int
    #: Number of LP columns the lower-bound solve used.
    columns: int
    #: Dual attribution of the upper bound (bottleneck tile's binding
    #: clique); ``None`` only if certification of the tile LP failed.
    attribution: Optional[TileAttribution] = None

    @property
    def gap(self) -> float:
        """Width of the bracket (``upper_bound - lower_bound``), Mbps."""
        return self.upper_bound - self.lower_bound


def _path_rates(
    model: InterferenceModel, new_path: Path
) -> Optional[Dict[str, Rate]]:
    """Max standalone rate per path link id, or None if any link is dead."""
    rates: Dict[str, Rate] = {}
    for link in new_path:
        rate = model.max_standalone_rate(link)
        if rate is None:
            return None
        rates[link.link_id] = rate
    return rates


def _near_tile(
    link: Link, tile_links: Sequence[Link], radius_m: float
) -> bool:
    """Whether ``link`` has an endpoint within ``radius_m`` of the tile."""
    endpoints = (link.sender, link.receiver)
    for tile_link in tile_links:
        for anchor in (tile_link.sender, tile_link.receiver):
            for node in endpoints:
                if node.distance_to(anchor) <= radius_m:
                    return True
    return False


def decompose_path(
    model: InterferenceModel,
    new_path: Path,
    background: Sequence[Tuple[Path, float]] = (),
    config: Optional[TileConfig] = None,
) -> List[Tile]:
    """Partition the estimation problem into interference tiles.

    Seeds tile boundaries from the path's maximal runs of consecutive
    mutually-conflicting links (the Section 4 local-clique structure),
    merges adjacent runs up to :attr:`TileConfig.tile_size` path links per
    tile, and attaches to each tile exactly the background links that
    conflict with one of its path links at maximum standalone rates.

    Raises:
        InfeasibleProblemError: when some path link supports no rate at
            all (no estimate is then well posed; the exact Eq. 6 answer
            would be zero or undefined).
    """
    config = config or TileConfig()
    path_links = list(new_path)
    rates = _path_rates(model, new_path)
    if rates is None:
        raise InfeasibleProblemError(
            f"path {new_path} has a link with no standalone rate"
        )
    runs = local_interference_cliques(model, new_path, rates)
    groups: List[Tuple[int, int]] = []
    current_start, current_end = runs[0][0], runs[0][-1]
    for run in runs[1:]:
        start, end = run[0], run[-1]
        if max(current_end, end) - current_start + 1 <= config.tile_size:
            current_end = max(current_end, end)
        else:
            groups.append((current_start, current_end))
            current_start, current_end = start, end
    groups.append((current_start, current_end))

    path_couples = [
        LinkRate(link, rates[link.link_id]) for link in path_links
    ]
    background_couples: List[LinkRate] = []
    for link in _collect_links(background):
        rate = model.max_standalone_rate(link)
        if rate is not None:
            background_couples.append(LinkRate(link, rate))

    global_order = _collect_links(background, new_path)
    tiles: List[Tile] = []
    for index, (start, end) in enumerate(groups):
        tile_path = path_links[start : end + 1]
        tile_couples = path_couples[start : end + 1]
        member_ids = {link.link_id for link in tile_path}
        for couple in background_couples:
            if couple.link.link_id in member_ids:
                continue
            if config.radius_m is not None and not _near_tile(
                couple.link, tile_path, config.radius_m
            ):
                continue
            if any(
                model.conflicts(couple, path_couple)
                for path_couple in tile_couples
            ):
                member_ids.add(couple.link.link_id)
        links = tuple(
            link for link in global_order if link.link_id in member_ids
        )
        tiles.append(
            Tile(
                index=index,
                start=start,
                end=end,
                links=links,
                new_links=tuple(tile_path),
            )
        )
    return tiles


def _residual_columns(
    model: InterferenceModel,
    background: Sequence[Tuple[Path, float]],
    covered: set,
    tile_size: int,
) -> List[RateIndependentSet]:
    """Lower-bound columns for background links outside every tile.

    Each background path's uncovered links are windowed (``tile_size``
    links per window) and enumerated locally; one stitching pass then
    round-robins across the windows, merging columns whenever the model
    confirms the union is still independent, so flows in distant parts of
    the field can share airtime in the restricted LP.  Every emitted
    column is validated (or enumerated) under ``model`` itself, so the
    Section 3.3 lower-bound contract is preserved exactly.
    """
    windows: List[List[Link]] = []
    seen = set(covered)
    for path, _demand in background:
        segment: List[Link] = []
        for link in list(path.links) + [None]:
            if link is not None and link.link_id not in seen:
                seen.add(link.link_id)
                segment.append(link)
                if len(segment) < tile_size:
                    continue
            if segment:
                windows.append(segment)
                segment = []
    window_columns = [
        columns
        for window in windows
        if (columns := enumerate_maximal_independent_sets(model, window))
    ]
    residual = [column for columns in window_columns for column in columns]
    if len(window_columns) > 1:
        rounds = min(8, max(len(columns) for columns in window_columns))
        for round_index in range(rounds):
            merged: List[LinkRate] = []
            for columns in window_columns:
                candidate = columns[round_index % len(columns)]
                union = merged + list(candidate.couples)
                if model.is_independent(union):
                    merged = union
            if merged:
                residual.append(RateIndependentSet(frozenset(merged)))
    return residual


def _attribute_bottleneck(
    index: int,
    tile: Tile,
    program: Tuple[object, List[RateIndependentSet]],
    background: Sequence[Tuple[Path, float]],
    upper: float,
) -> Optional[TileAttribution]:
    """Dual attribution of the bottleneck tile's Eq. 6 optimum.

    Re-uses the tile's already-solved LP (the solution is cached, so the
    certificate costs cache hits, not extra ``lp.solves``) and the
    explain machinery's clique grouping, so the reported links and
    fingerprint are exactly what a decision explanation over the same
    program would show.
    """
    lp, columns = program
    try:
        explanation = explain_solution(
            lp.solve(),
            lp.certificate(),
            columns,
            tile.links,
            background=background,
            bandwidth=upper,
        )
    except InfeasibleProblemError:  # pragma: no cover - defensive
        return None
    top = explanation.bottleneck
    return TileAttribution(
        tile=index,
        clique_links=top.links if top else (),
        shadow_price=top.shadow_price if top else 0.0,
        airtime_price=explanation.airtime_price,
        fingerprint=explanation.bottleneck_fingerprint,
    )


def tiled_path_bandwidth(
    model: InterferenceModel,
    new_path: Path,
    background: Sequence[Tuple[Path, float]] = (),
    config: Optional[TileConfig] = None,
) -> TiledPathEstimate:
    """Two-sided Eq. 6 estimate via per-tile LPs (see module docstring).

    Raises:
        InfeasibleProblemError: when the background demands are not
            deliverable even within a single tile's relaxation, or some
            path link supports no rate — the same situations in which
            :func:`~repro.core.bandwidth.available_path_bandwidth` raises.
    """
    config = config or TileConfig()
    recorder = get_recorder()
    with recorder.span("scale.estimate"):
        with recorder.span("scale.decompose"):
            tiles = decompose_path(model, new_path, background, config)
        recorder.count("scale.tiles", len(tiles))
        demands = link_demands_from_paths(background)
        tile_optima: List[float] = []
        tile_programs: List[Tuple[object, List[RateIndependentSet]]] = []
        column_pool: Dict[RateIndependentSet, None] = {}
        for tile in tiles:
            with recorder.span("scale.tile_lp"):
                columns = enumerate_maximal_independent_sets(
                    model, tile.links, config.max_sets
                )
                lp, _f_var, _lambda_vars = build_path_bandwidth_lp(
                    columns, tile.links, demands, set(tile.new_links)
                )
                value = lp.solve().objective
                if -1e-9 < value <= 0.0:
                    value = 0.0
            recorder.count("scale.tile_solves")
            tile_optima.append(value)
            tile_programs.append((lp, columns))
            for column in columns:
                column_pool.setdefault(column)

        bottleneck = min(
            range(len(tile_optima)), key=tile_optima.__getitem__
        )
        upper = tile_optima[bottleneck]
        attribution = _attribute_bottleneck(
            bottleneck, tiles[bottleneck], tile_programs[bottleneck],
            background, upper,
        )

        covered = {
            link.link_id for tile in tiles for link in tile.links
        }
        lb_columns = list(column_pool)
        for column in _residual_columns(
            model, background, covered, config.tile_size
        ):
            lb_columns.append(column)
            covered.update(link.link_id for link in column.links)
        for link in _collect_links(background, new_path):
            if link.link_id in covered:
                continue
            rate = model.max_standalone_rate(link)
            if rate is not None:
                lb_columns.append(
                    RateIndependentSet(frozenset({LinkRate(link, rate)}))
                )
        recorder.count("scale.columns", len(lb_columns))
        try:
            lower = available_path_bandwidth(
                model, new_path, background, independent_sets=lb_columns
            ).available_bandwidth
        except InfeasibleProblemError:
            # The restricted column family cannot deliver the background
            # demands; zero is still a valid lower bound whenever the
            # exact problem is feasible.
            lower = 0.0
    return TiledPathEstimate(
        lower_bound=lower,
        upper_bound=upper,
        tile_optima=tuple(tile_optima),
        tiles=tuple(tiles),
        bottleneck=bottleneck,
        columns=len(lb_columns),
        attribution=attribution,
    )
