"""Path-loss models.

The paper's evaluation uses a log-distance model with propagation exponent
4 (Section 5.2).  We expose that as :class:`LogDistancePathLoss` and add two
classic alternatives (free space, two-ray ground) so sensitivity studies can
vary the channel without touching anything else.

All models answer one question: the **linear path gain** ``g(d)`` such that
``received_mw = tx_mw * g(d)``.  Gains are pure functions of distance; fading
and shadowing are out of scope (the paper's model has neither).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "PathLossModel",
    "LogDistancePathLoss",
    "FreeSpacePathLoss",
    "TwoRayGroundPathLoss",
]

#: Distances below this are clamped to it, so co-located nodes do not produce
#: infinite gains.  One decimetre is far below any distance the models are
#: calibrated for.
MIN_DISTANCE_M = 0.1


class PathLossModel(ABC):
    """Interface: linear path gain as a function of distance in metres."""

    @abstractmethod
    def gain(self, distance_m: float) -> float:
        """Linear power gain (≤ its value at :data:`MIN_DISTANCE_M`)."""

    def received_mw(self, tx_mw: float, distance_m: float) -> float:
        """Received power in mW for a transmit power ``tx_mw``."""
        return tx_mw * self.gain(distance_m)

    def gain_array(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`gain` over an array of distances.

        The base implementation loops over :meth:`gain`, so it is
        bit-identical to the scalar path by construction; subclasses with
        formulas built from correctly-rounded elementwise operations
        override it with a true vectorized version.
        """
        flat = np.asarray(distances_m, dtype=float)
        out = np.array(
            [self.gain(float(d)) for d in flat.ravel()], dtype=float
        )
        return out.reshape(flat.shape)

    def received_mw_array(self, tx_mw: float, distances_m: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`received_mw`; same rounding as the scalar path."""
        return tx_mw * self.gain_array(distances_m)

    def distance_for_gain(self, gain: float) -> float:
        """Inverse of :meth:`gain`; subclasses with closed forms override.

        The generic implementation bisects, which is enough for monotone
        models and keeps new subclasses cheap to write.
        """
        if gain <= 0:
            raise ConfigurationError("gain must be positive")
        lo, hi = MIN_DISTANCE_M, 1e7
        if self.gain(lo) < gain:
            return lo
        for _ in range(200):
            mid = math.sqrt(lo * hi)  # geometric bisection suits power laws
            if self.gain(mid) >= gain:
                lo = mid
            else:
                hi = mid
        return lo


class LogDistancePathLoss(PathLossModel):
    """``g(d) = reference_gain * (reference_distance / d) ** exponent``.

    With ``exponent=4`` this is the paper's channel.  ``reference_gain`` is
    the linear gain at ``reference_distance`` (default 1 m); its default of
    1e-3 (-30 dB at 1 m) is a conventional indoor/outdoor figure and only
    shifts absolute powers — every result in the library depends on power
    *ratios* plus the calibrated sensitivities, so the reference cancels.
    """

    def __init__(
        self,
        exponent: float = 4.0,
        reference_gain: float = 1e-3,
        reference_distance_m: float = 1.0,
    ):
        if exponent <= 0:
            raise ConfigurationError("path-loss exponent must be positive")
        if reference_gain <= 0:
            raise ConfigurationError("reference gain must be positive")
        if reference_distance_m <= 0:
            raise ConfigurationError("reference distance must be positive")
        self.exponent = float(exponent)
        self.reference_gain = float(reference_gain)
        self.reference_distance_m = float(reference_distance_m)
        # Small integral exponents (the paper uses 4, the ablations 2..6) are
        # evaluated as a fixed left-to-right multiplication chain: unlike
        # ``**`` (libm pow, whose SIMD batch results differ from the scalar
        # call in the last ulp), multiplication is correctly rounded, so the
        # scalar and vectorized paths agree bit-for-bit.
        self._int_exponent: Optional[int] = (
            int(self.exponent)
            if self.exponent.is_integer() and 1 <= self.exponent <= 16
            else None
        )

    def gain(self, distance_m: float) -> float:
        d = max(distance_m, MIN_DISTANCE_M)
        ratio = self.reference_distance_m / d
        if self._int_exponent is None:
            return self.reference_gain * ratio**self.exponent
        power = ratio
        for _ in range(self._int_exponent - 1):
            power = power * ratio
        return self.reference_gain * power

    def gain_array(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorized gain, bit-identical to :meth:`gain` per element."""
        if self._int_exponent is None:
            return super().gain_array(distances_m)
        d = np.maximum(np.asarray(distances_m, dtype=float), MIN_DISTANCE_M)
        ratio = self.reference_distance_m / d
        power = ratio
        for _ in range(self._int_exponent - 1):
            power = power * ratio
        return self.reference_gain * power

    def distance_for_gain(self, gain: float) -> float:
        if gain <= 0:
            raise ConfigurationError("gain must be positive")
        d = self.reference_distance_m * (self.reference_gain / gain) ** (
            1.0 / self.exponent
        )
        return max(d, MIN_DISTANCE_M)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogDistancePathLoss(exponent={self.exponent}, "
            f"reference_gain={self.reference_gain}, "
            f"reference_distance_m={self.reference_distance_m})"
        )


class FreeSpacePathLoss(LogDistancePathLoss):
    """Free-space propagation: a log-distance model with exponent 2."""

    def __init__(self, reference_gain: float = 1e-3, reference_distance_m: float = 1.0):
        super().__init__(
            exponent=2.0,
            reference_gain=reference_gain,
            reference_distance_m=reference_distance_m,
        )


class TwoRayGroundPathLoss(PathLossModel):
    """Two-ray ground reflection: free space near, exponent 4 far.

    The crossover distance ``d_c`` is where the two regimes meet; below it
    the model is free space with ``near_reference_gain``, above it the gain
    falls with the fourth power, continuous at the crossover.
    """

    def __init__(
        self,
        crossover_m: float = 100.0,
        near_reference_gain: float = 1e-3,
        reference_distance_m: float = 1.0,
    ):
        if crossover_m <= 0:
            raise ConfigurationError("crossover distance must be positive")
        self.crossover_m = float(crossover_m)
        self._near = LogDistancePathLoss(
            exponent=2.0,
            reference_gain=near_reference_gain,
            reference_distance_m=reference_distance_m,
        )
        gain_at_crossover = self._near.gain(crossover_m)
        self._far = LogDistancePathLoss(
            exponent=4.0,
            reference_gain=gain_at_crossover,
            reference_distance_m=crossover_m,
        )

    def gain(self, distance_m: float) -> float:
        d = max(distance_m, MIN_DISTANCE_M)
        if d <= self.crossover_m:
            return self._near.gain(d)
        return self._far.gain(d)

    def distance_for_gain(self, gain: float) -> float:
        if gain >= self._near.gain(self.crossover_m):
            return self._near.distance_for_gain(gain)
        return self._far.distance_for_gain(gain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TwoRayGroundPathLoss(crossover_m={self.crossover_m})"
