"""Radio configuration: power, noise, carrier sensing, calibrated sensitivities.

A :class:`RadioConfig` ties together everything the interference layer needs
to evaluate Eq. 1 and Eq. 3 of the paper:

* the transmit power (uniform across nodes, as in the paper);
* the path-loss model;
* the rate table;
* per-rate **receiver sensitivities**, calibrated so each rate's standalone
  range equals the table's ``range_m`` exactly — the paper specifies ranges,
  not sensitivities, so calibration from ranges reproduces its constants
  bit-for-bit;
* the noise floor, defaulting to a value low enough that a link operating at
  its maximum standalone rate still meets that rate's SINR requirement at
  full range with no interferers (otherwise the paper's range table would be
  internally inconsistent);
* the carrier-sense range used by the distributed idle-time machinery of
  Section 4.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.phy.propagation import LogDistancePathLoss, PathLossModel
from repro.phy.rates import IEEE80211A_PAPER_RATES, Rate, RateTable
from repro.units import dbm_to_mw

__all__ = ["RadioConfig"]

#: Safety factor applied when deriving the default noise floor, so a link at
#: exactly its maximum range has a small SNR margin over the threshold.
_NOISE_MARGIN = 1.1


class RadioConfig:
    """Immutable radio parameterisation shared by all nodes.

    Args:
        rate_table: The discrete rate ladder.
        path_loss: Channel model; defaults to the paper's log-distance
            model with exponent 4.
        tx_power_dbm: Transmit power, identical at every node (default
            20 dBm = 100 mW, a common 802.11a figure; results depend only on
            power ratios so this choice is not load-bearing).
        noise_mw: Noise power; ``None`` derives the largest noise floor
            consistent with the rate table's ranges (see module docstring).
        carrier_sense_range_m: Distance within which a node senses the
            channel busy while another node transmits.  ``None`` defaults to
            the rate table's maximum transmission range, the common
            "CS range = max TX range" assumption that also matches how the
            paper's Scenario I links "hear" each other.
    """

    def __init__(
        self,
        rate_table: RateTable = IEEE80211A_PAPER_RATES,
        path_loss: Optional[PathLossModel] = None,
        tx_power_dbm: float = 20.0,
        noise_mw: Optional[float] = None,
        carrier_sense_range_m: Optional[float] = None,
    ):
        self.rate_table = rate_table
        self.path_loss = path_loss if path_loss is not None else LogDistancePathLoss()
        self.tx_power_mw = dbm_to_mw(tx_power_dbm)
        self.tx_power_dbm = float(tx_power_dbm)

        # Sensitivity calibration: Pr(range_m) == sensitivity for each rate,
        # so "Pr >= RX_se(k)" in Eq. 1 is exactly "distance <= range_m".
        self._sensitivity_mw: Dict[float, float] = {
            rate.mbps: self.tx_power_mw * self.path_loss.gain(rate.range_m)
            for rate in rate_table
        }

        if noise_mw is None:
            noise_mw = min(
                self._sensitivity_mw[rate.mbps] / rate.sinr_linear
                for rate in rate_table
            ) / _NOISE_MARGIN
        if noise_mw <= 0:
            raise ConfigurationError("noise power must be positive")
        self.noise_mw = float(noise_mw)

        for rate in rate_table:
            snr_at_range = self._sensitivity_mw[rate.mbps] / self.noise_mw
            if snr_at_range < rate.sinr_linear:
                raise ConfigurationError(
                    f"noise floor {self.noise_mw:.3e} mW is too high: rate "
                    f"{rate.mbps:g} Mbps cannot meet its SINR requirement at "
                    f"its nominal range {rate.range_m:g} m"
                )

        if carrier_sense_range_m is None:
            carrier_sense_range_m = rate_table.max_range_m
        if carrier_sense_range_m <= 0:
            raise ConfigurationError("carrier-sense range must be positive")
        self.carrier_sense_range_m = float(carrier_sense_range_m)

    # -- power queries --------------------------------------------------------

    def received_mw(self, distance_m: float) -> float:
        """Received power at ``distance_m`` from any transmitter."""
        return self.path_loss.received_mw(self.tx_power_mw, distance_m)

    def received_mw_array(self, distances_m):
        """Vectorized :meth:`received_mw` over a numpy array of distances."""
        return self.path_loss.received_mw_array(self.tx_power_mw, distances_m)

    def sensitivity_mw(self, rate: Rate) -> float:
        """Calibrated receiver sensitivity for ``rate``."""
        return self._sensitivity_mw[rate.mbps]

    def meets_sensitivity(self, rate: Rate, distance_m: float) -> bool:
        """Eq. 1, first condition: ``Pr >= RX_se(k)``.

        Implemented on distances (exactly equivalent after calibration and
        immune to floating-point drift at the range boundary).
        """
        return distance_m <= rate.range_m

    def hears(self, distance_m: float) -> bool:
        """Whether a node at ``distance_m`` from a transmitter senses it."""
        return distance_m <= self.carrier_sense_range_m

    # -- rate queries ----------------------------------------------------------

    def max_standalone_rate(self, distance_m: float) -> Optional[Rate]:
        """Fastest rate a lone link of length ``distance_m`` supports.

        Checks both conditions of Eq. 1 with zero interference; with the
        default noise calibration the sensitivity condition is binding.
        """
        for rate in self.rate_table:
            if not self.meets_sensitivity(rate, distance_m):
                continue
            snr = self.received_mw(distance_m) / self.noise_mw
            if snr >= rate.sinr_linear:
                return rate
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RadioConfig(tx={self.tx_power_dbm:g}dBm, "
            f"noise={self.noise_mw:.3e}mW, "
            f"cs_range={self.carrier_sense_range_m:g}m, "
            f"rates={[r.mbps for r in self.rate_table]})"
        )
