"""Physical-layer substrate: multirate tables, propagation, SINR.

This package provides the constants and pure computations the rest of the
library builds on:

* :mod:`repro.phy.rates` — discrete rate sets with per-rate SINR thresholds
  and transmission ranges (the paper uses four IEEE 802.11a rates);
* :mod:`repro.phy.propagation` — path-loss models (the paper uses a
  log-distance model with exponent 4);
* :mod:`repro.phy.radio` — a radio configuration tying transmit power,
  noise floor, carrier-sense range and a rate table together, with
  calibrated receiver sensitivities;
* :mod:`repro.phy.sinr` — numeric SINR helpers (Eq. 1 and Eq. 3 of the
  paper, in their power-domain form).
"""

from repro.phy.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PathLossModel,
    TwoRayGroundPathLoss,
)
from repro.phy.radio import RadioConfig
from repro.phy.rates import (
    IEEE80211A_PAPER_RATES,
    IEEE80211B_RATES,
    Rate,
    RateTable,
)
from repro.phy.sinr import (
    max_rate_under_interference,
    max_standalone_rate,
    sinr,
)

__all__ = [
    "PathLossModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "TwoRayGroundPathLoss",
    "RadioConfig",
    "Rate",
    "RateTable",
    "IEEE80211A_PAPER_RATES",
    "IEEE80211B_RATES",
    "sinr",
    "max_standalone_rate",
    "max_rate_under_interference",
]
