"""Discrete rate sets for multirate radios.

The paper evaluates with four IEEE 802.11a rates.  Section 5.2 gives the
authoritative constants (sourced from [14] in the paper):

==========  ================  ==================
Rate        Range (γ = 4)     SINR requirement
==========  ================  ==================
54 Mbps     59 m              24.56 dB
36 Mbps     79 m              18.80 dB
18 Mbps     119 m             10.79 dB
6 Mbps      158 m             6.02 dB
==========  ================  ==================

A :class:`Rate` couples the data rate with its SINR threshold and maximum
transmission distance; a :class:`RateTable` is an ordered collection with
the lookups the combinatorial layer needs ("fastest rate that works at this
distance", "fastest rate whose threshold this SINR clears", ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, RateError
from repro.units import db_to_linear

__all__ = [
    "Rate",
    "RateTable",
    "IEEE80211A_PAPER_RATES",
    "IEEE80211B_RATES",
    "paper_rate_table_for_exponent",
]


@dataclass(frozen=True, order=True)
class Rate:
    """One entry of a multirate table.

    Ordering is by ``mbps`` so ``max()``/``sorted()`` over rates do the
    natural thing.

    Attributes:
        mbps: Data rate in Mbps.
        sinr_db: Minimum SINR (dB) for a successful reception at this rate.
        range_m: Maximum transmitter–receiver distance (m) at which the
            rate works when the link transmits alone (the paper's
            "transmission distance", which encodes the receiver
            sensitivity through the path-loss model).
    """

    mbps: float
    sinr_db: float
    range_m: float

    def __post_init__(self) -> None:
        if self.mbps <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.mbps}")
        if self.range_m <= 0:
            raise ConfigurationError(
                f"range must be positive, got {self.range_m}"
            )

    @property
    def sinr_linear(self) -> float:
        """SINR threshold as a linear ratio."""
        return db_to_linear(self.sinr_db)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mbps:g}Mbps"


class RateTable:
    """An immutable, descending-ordered set of :class:`Rate` entries.

    Invariants enforced at construction:

    * at least one rate;
    * all ``mbps`` values distinct;
    * monotonicity: a faster rate never has a *lower* SINR requirement nor a
      *longer* range than a slower one (that is how real modulation ladders
      behave and the combinatorial layer relies on it for dominance
      arguments).
    """

    def __init__(self, rates: Iterable[Rate]):
        ordered = sorted(rates, key=lambda r: r.mbps, reverse=True)
        if not ordered:
            raise ConfigurationError("a rate table needs at least one rate")
        seen = set()
        for rate in ordered:
            if rate.mbps in seen:
                raise ConfigurationError(
                    f"duplicate rate {rate.mbps} Mbps in rate table"
                )
            seen.add(rate.mbps)
        for faster, slower in zip(ordered, ordered[1:]):
            if faster.sinr_db < slower.sinr_db:
                raise ConfigurationError(
                    f"rate {faster.mbps} Mbps has lower SINR requirement "
                    f"than slower rate {slower.mbps} Mbps"
                )
            if faster.range_m > slower.range_m:
                raise ConfigurationError(
                    f"rate {faster.mbps} Mbps has longer range than slower "
                    f"rate {slower.mbps} Mbps"
                )
        self._rates: Tuple[Rate, ...] = tuple(ordered)
        self._by_mbps = {rate.mbps: rate for rate in ordered}

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Rate]:
        return iter(self._rates)

    def __len__(self) -> int:
        return len(self._rates)

    def __contains__(self, mbps: float) -> bool:
        return float(mbps) in self._by_mbps

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RateTable):
            return NotImplemented
        return self._rates == other._rates

    def __hash__(self) -> int:
        return hash(self._rates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(r) for r in self._rates)
        return f"RateTable([{inner}])"

    # -- lookups ------------------------------------------------------------

    @property
    def rates(self) -> Tuple[Rate, ...]:
        """All rates, fastest first."""
        return self._rates

    @property
    def fastest(self) -> Rate:
        return self._rates[0]

    @property
    def slowest(self) -> Rate:
        return self._rates[-1]

    @property
    def max_range_m(self) -> float:
        """Longest transmission range across the table (the slowest rate's)."""
        return self.slowest.range_m

    def get(self, mbps: float) -> Rate:
        """Return the :class:`Rate` with exactly ``mbps``; raise otherwise."""
        try:
            return self._by_mbps[float(mbps)]
        except KeyError:
            known = ", ".join(f"{r.mbps:g}" for r in self._rates)
            raise RateError(
                f"{mbps} Mbps is not in the rate table (known: {known})"
            ) from None

    def rates_at_distance(self, distance_m: float) -> Tuple[Rate, ...]:
        """All rates usable at ``distance_m`` when transmitting alone."""
        return tuple(r for r in self._rates if distance_m <= r.range_m)

    def max_rate_at_distance(self, distance_m: float) -> Optional[Rate]:
        """Fastest rate usable at ``distance_m``, or ``None`` if out of range."""
        for rate in self._rates:
            if distance_m <= rate.range_m:
                return rate
        return None

    def max_rate_for_sinr(self, sinr_linear: float) -> Optional[Rate]:
        """Fastest rate whose SINR threshold ``sinr_linear`` clears.

        Returns ``None`` when even the slowest rate's threshold is missed
        (the transmission fails entirely).
        """
        for rate in self._rates:
            if sinr_linear >= rate.sinr_linear:
                return rate
        return None

    def rates_not_faster_than(self, rate: Rate) -> Tuple[Rate, ...]:
        """All table entries with ``mbps`` ≤ ``rate.mbps`` (rate fallbacks)."""
        return tuple(r for r in self._rates if r.mbps <= rate.mbps)

    def restrict(self, mbps_values: Sequence[float]) -> "RateTable":
        """A new table containing only the listed rates.

        Useful for scenario studies that allow a subset of the ladder (the
        paper's Scenario II uses only 36 and 54 Mbps).
        """
        return RateTable([self.get(m) for m in mbps_values])


def _paper_rates() -> List[Rate]:
    return [
        Rate(mbps=54.0, sinr_db=24.56, range_m=59.0),
        Rate(mbps=36.0, sinr_db=18.80, range_m=79.0),
        Rate(mbps=18.0, sinr_db=10.79, range_m=119.0),
        Rate(mbps=6.0, sinr_db=6.02, range_m=158.0),
    ]


#: The four IEEE 802.11a rates with the exact constants of Section 5.2.
IEEE80211A_PAPER_RATES = RateTable(_paper_rates())

def paper_rate_table_for_exponent(exponent: float) -> RateTable:
    """The paper's rate ladder re-ranged for a different path-loss exponent.

    The paper's transmission distances (59/79/119/158 m) are stated for
    exponent 4.  Keeping each rate's receiver sensitivity fixed and
    changing the exponent γ rescales every range to ``d**(4/γ)`` (with the
    1 m reference distance of the default channel): sensitivity =
    ``P·C/d4**4`` and the new range solves ``P·C/d**γ = sensitivity``.
    SINR requirements are modulation properties and stay unchanged.

    Used by the propagation-sensitivity ablation; ``exponent=4`` returns a
    table equal to :data:`IEEE80211A_PAPER_RATES`.
    """
    if exponent <= 0:
        raise ConfigurationError("path-loss exponent must be positive")
    return RateTable(
        Rate(
            mbps=rate.mbps,
            sinr_db=rate.sinr_db,
            range_m=rate.range_m ** (4.0 / exponent),
        )
        for rate in _paper_rates()
    )


#: An IEEE 802.11b ladder, provided for experiments beyond the paper's
#: parameterisation.  Thresholds follow the same source family as [14];
#: ranges are scaled consistently with a γ = 4 log-distance model.
IEEE80211B_RATES = RateTable(
    [
        Rate(mbps=11.0, sinr_db=10.0, range_m=140.0),
        Rate(mbps=5.5, sinr_db=8.0, range_m=160.0),
        Rate(mbps=2.0, sinr_db=6.0, range_m=180.0),
        Rate(mbps=1.0, sinr_db=4.0, range_m=200.0),
    ]
)
