"""Numeric SINR helpers (Eq. 1 and Eq. 3 of the paper).

These are pure power-domain computations; geometry (who interferes with
whom, at what distance) lives in :mod:`repro.interference`, which calls into
these helpers once it has collected the relevant powers.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.phy.radio import RadioConfig
from repro.phy.rates import Rate

__all__ = ["sinr", "max_standalone_rate", "max_rate_under_interference"]


def sinr(signal_mw: float, interference_mw: float, noise_mw: float) -> float:
    """Eq. 3: ``SINR = Pr_jj / (sum of interferer powers + P_N)``."""
    denominator = interference_mw + noise_mw
    if denominator <= 0:
        return float("inf")
    return signal_mw / denominator


def max_standalone_rate(
    radio: RadioConfig, link_distance_m: float
) -> Optional[Rate]:
    """Fastest rate a link supports with no concurrent transmissions.

    Thin wrapper over :meth:`RadioConfig.max_standalone_rate`, kept here so
    call sites that think in SINR terms have a matching vocabulary.
    """
    return radio.max_standalone_rate(link_distance_m)


def max_rate_under_interference(
    radio: RadioConfig,
    link_distance_m: float,
    interferer_powers_mw: Iterable[float],
) -> Optional[Rate]:
    """Fastest rate satisfying both conditions of Eq. 1 under interference.

    Args:
        radio: The shared radio configuration.
        link_distance_m: Transmitter→receiver distance of the link under
            test.
        interferer_powers_mw: Received powers, at this link's receiver, of
            every *other* concurrently transmitting node (Eq. 3's sum).

    Returns:
        The fastest supported :class:`Rate`, or ``None`` when even the
        slowest rate fails — the link cannot be in this concurrent set
        (Prop. 2 then removes it).
    """
    signal = radio.received_mw(link_distance_m)
    interference = sum(interferer_powers_mw)
    ratio = sinr(signal, interference, radio.noise_mw)
    for rate in radio.rate_table:
        if not radio.meets_sensitivity(rate, link_distance_m):
            continue
        if ratio >= rate.sinr_linear:
            return rate
    return None
