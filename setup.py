"""Legacy shim: environments without the `wheel` package cannot do PEP 517
editable installs; this enables `pip install -e .` via setup.py develop."""
from setuptools import setup

setup()
