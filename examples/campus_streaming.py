"""Wireless streaming across a campus mesh: picking the QoS routing metric.

The paper motivates its model with "wireless streaming at homes, in
buildings and on campus via wireless mesh networks".  This example builds
a campus-scale mesh shaped like a ring road: a direct west–east corridor
of access points 75 m apart, and a parallel northern corridor 400 m away
(far enough that, with the paper's propagation constants, traffic on one
corridor cannot interfere with the other).

A heavy background transfer jams the middle of the direct corridor.  A
4 Mbps lecture stream must then travel from the west gate to the east
dorms:

* **hop count** marches straight through the jam with the fewest,
  longest (hence slowest) hops;
* **e2eTD** also stays in the corridor, but on short fast hops;
* **average-e2eD** (Eq. 14) sees the idleness collapse around the jam and
  takes the ring road — the only route whose true (Eq. 6) available
  bandwidth covers the demand.

Run:  python examples/campus_streaming.py
"""

from repro import Network, Path, ProtocolInterferenceModel, RadioConfig
from repro.core import min_airtime_schedule, solve_with_column_generation
from repro.estimation import node_idleness_from_schedule
from repro.routing import METRICS, RoutingContext, route

#: Access points 75 m apart: a southern corridor (s0..s8), a northern
#: ring-road corridor (n0..n8) 400 m away, and connector columns at both
#: campus edges.
CORRIDOR_NODES = 9
HOP_SPACING_M = 75.0
RING_OFFSET_M = 400.0
CONNECTOR_YS = (100.0, 200.0, 300.0)


def build_campus() -> Network:
    network = Network(RadioConfig(), name="campus-ring")
    for index in range(CORRIDOR_NODES):
        x = index * HOP_SPACING_M
        network.add_node(f"s{index}", x=x, y=0.0)
        network.add_node(f"n{index}", x=x, y=RING_OFFSET_M)
    east_x = (CORRIDOR_NODES - 1) * HOP_SPACING_M
    for index, y in enumerate(CONNECTOR_YS):
        network.add_node(f"w{index}", x=0.0, y=y)
        network.add_node(f"e{index}", x=east_x, y=y)
    network.build_links_within_range()
    return network


def main() -> None:
    network = build_campus()
    model = ProtocolInterferenceModel(network)

    # Background: a 30 Mbps bulk transfer in the middle of the corridor.
    background = [(Path([network.link_between("s4", "s5")]), 30.0)]
    schedule = min_airtime_schedule(model, background)
    idleness = node_idleness_from_schedule(network, schedule, model)
    context = RoutingContext(model=model, node_idleness=idleness)

    demand = 4.0
    print(f"stream: s0 (west gate) -> s8 (dorms) @ {demand} Mbps, with a "
          "30 Mbps transfer jamming s4->s5\n")
    for name in ("hop-count", "e2eTD", "average-e2eD"):
        path = route(network, "s0", "s8", METRICS[name], context)
        result = solve_with_column_generation(model, path, background).result
        verdict = "admit" if result.supports(demand) else "reject"
        print(f"{name:>13s}: {path}")
        print(f"{'':>13s}  available {result.available_bandwidth:6.2f} Mbps "
              f"-> {verdict}")


if __name__ == "__main__":
    main()
