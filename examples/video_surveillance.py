"""On-demand video monitoring over a multihop sensor network.

The paper's introduction motivates the model with "on-demand video
monitoring of wildlife and battlefields via wireless sensor networks".
This example plays that scenario end to end:

1. deploy 30 sensors at random in a 400 m x 600 m field (the paper's
   Section 5.2 parameters);
2. stream three 2 Mbps camera feeds to a monitoring station, admitted one
   by one with the average-e2eD QoS routing metric;
3. when an operator requests a fourth, high-rate (4 Mbps) feed, decide
   admission two ways — the distributed conservative-clique estimate a
   node could compute locally (Eq. 13), and the exact Eq. 6 optimum — and
   show both agree on the decision.

Run:  python examples/video_surveillance.py
"""

from repro import (
    Flow,
    ProtocolInterferenceModel,
    available_path_bandwidth,
    paper_random_topology,
)
from repro.core import min_airtime_schedule
from repro.estimation import (
    ESTIMATORS,
    node_idleness_from_schedule,
    path_state_for,
)
from repro.routing import METRICS, RoutingContext, route, run_sequential_admission


def main() -> None:
    network = paper_random_topology(seed=8)
    model = ProtocolInterferenceModel(network)
    sink = "n0"
    cameras = ["n27", "n9", "n15"]

    feeds = [
        Flow(flow_id=f"cam-{camera}", source=camera, destination=sink,
             demand_mbps=2.0)
        for camera in cameras
    ]
    report = run_sequential_admission(
        network, model, feeds, METRICS["average-e2eD"],
        use_column_generation=True,
    )
    print("baseline feeds:")
    for outcome in report.outcomes:
        status = "admitted" if outcome.admitted else "REJECTED"
        print(
            f"  {outcome.flow.flow_id}: {outcome.path} "
            f"(available {outcome.available_bandwidth:.2f} Mbps) {status}"
        )

    background = report.background()
    schedule = min_airtime_schedule(model, background, max_sets=500_000)
    idleness = node_idleness_from_schedule(network, schedule, model)

    # The operator asks for one more, higher-rate feed.
    extra_camera, demand = "n21", 4.0
    context = RoutingContext(model=model, node_idleness=idleness)
    path = route(network, extra_camera, sink, METRICS["average-e2eD"], context)
    state = path_state_for(model, path, idleness)
    estimate = ESTIMATORS["conservative"].estimate(state)
    truth = available_path_bandwidth(model, path, background)

    print(f"\nhigh-rate feed request: {extra_camera} -> {sink} @ {demand} Mbps")
    print(f"  route: {path}")
    print(f"  conservative clique estimate (Eq. 13): {estimate:.2f} Mbps")
    print(f"  exact available bandwidth (Eq. 6):     "
          f"{truth.available_bandwidth:.2f} Mbps")
    decision_local = "admit" if estimate >= demand else "reject"
    decision_exact = "admit" if truth.supports(demand) else "reject"
    print(f"  distributed decision: {decision_local}; "
          f"exact decision: {decision_exact}")


if __name__ == "__main__":
    main()
