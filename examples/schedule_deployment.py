"""From model to deployment: LP schedule → TDMA frame → packet simulation.

The paper's model assumes "a global optimal link scheduling exists".  This
example makes one: it takes the Scenario II optimum, quantises the
fractional schedule into a 20-slot TDMA frame, and then actually pushes
traffic through the frame with per-hop queues — confirming that the flow
delivers the model's 16.2 Mbps with bounded buffers, and that offering
more than the model's number only grows queues, not goodput.

It closes with the max-min fair answer when a second flow shares the
chain's middle link.

Run:  python examples/schedule_deployment.py
"""

from repro import Path, available_path_bandwidth, scenario_two
from repro.core import max_min_fair_allocation, realize_frame
from repro.mac import simulate_frame_flows


def main() -> None:
    bundle = scenario_two()
    result = available_path_bandwidth(bundle.model, bundle.path)
    print(f"model optimum: {result.available_bandwidth:.1f} Mbps")
    print(result.schedule)

    frame = realize_frame(result.schedule, 20)
    print(f"\nrealised {frame}:")
    for link in bundle.path:
        slots = frame.slots_of(link)
        print(f"  {link.link_id}: slots {slots} "
              f"-> {frame.throughput_of(link):.1f} Mbps")

    for demand in (16.2, 20.0):
        report = simulate_frame_flows(
            frame, [(bundle.path, demand)], frames_to_run=300,
            warmup_frames=50,
        )
        stats = report.per_flow[0]
        print(
            f"\noffered {demand:.1f} Mbps -> delivered "
            f"{stats.delivered_mbps:.1f} Mbps "
            f"(ratio {stats.delivery_ratio:.2f}), final backlog "
            f"{stats.final_backlog:.0f} Mb"
        )

    print("\nmax-min fairness with a second flow on L2:")
    allocation = max_min_fair_allocation(
        bundle.model,
        [bundle.path, Path([bundle.network.link("L2")])],
    )
    for index, rate in enumerate(allocation.rates):
        print(f"  flow {index}: {rate:.2f} Mbps")


if __name__ == "__main__":
    main()
