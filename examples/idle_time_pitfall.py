"""Why channel idle time mis-estimates available bandwidth (Scenario I).

Reproduces the paper's Section 1 narrative with all three lenses:

* the optimal scheduler overlaps the two background links and leaves
  1 - λ of the channel for the new link;
* idle-time accounting under serialised transmissions only sees 1 - 2λ;
* a real CSMA/CA MAC (simulated packet by packet) lands in between,
  because the background senders cannot hear each other and overlap only
  by chance.

Run:  python examples/idle_time_pitfall.py
"""

from repro import available_path_bandwidth, scenario_one
from repro.core import tdma_schedule
from repro.estimation import (
    ESTIMATORS,
    node_idleness_from_schedule,
    path_state_for,
)
from repro.mac import CsmaConfig, simulate_background


def main() -> None:
    share = 0.3
    bundle = scenario_one(background_share=share)
    rate = bundle.rate_mbps
    estimator = ESTIMATORS["bottleneck"]

    optimal = available_path_bandwidth(
        bundle.model, bundle.new_path, bundle.background
    )

    serialised = tdma_schedule(bundle.model, bundle.background)
    idle_serialised = node_idleness_from_schedule(
        bundle.network, serialised, bundle.model
    )
    est_serialised = estimator.estimate(
        path_state_for(bundle.model, bundle.new_path, idle_serialised)
    )

    mac = simulate_background(
        bundle.network,
        bundle.model,
        bundle.background,
        config=CsmaConfig(sim_slots=100_000, warmup_slots=5_000),
        seed=7,
    )
    est_csma = estimator.estimate(
        path_state_for(bundle.model, bundle.new_path, mac.node_idleness)
    )

    print(f"background share on L1 and L2: λ = {share}")
    print(f"link rate: {rate:g} Mbps\n")
    print(f"optimal available bandwidth on L3 (Eq. 6): "
          f"{optimal.available_bandwidth:5.1f} Mbps  (= (1-λ)·r)")
    print(f"idle-time estimate, serialised background: "
          f"{est_serialised:5.1f} Mbps  (= (1-2λ)·r)")
    print(f"idle-time estimate, CSMA/CA measured:      "
          f"{est_csma:5.1f} Mbps  (≈ (1-λ)²·r)")
    print("\nA flow demanding 0.65·r would be wrongly rejected by both "
          "idle-time estimates, yet the optimal scheduler supports it.")


if __name__ == "__main__":
    main()
