"""Admission control under churn: what a bad estimator costs.

Flows arrive and depart over time in the paper's 30-node network.  Each
arrival is routed (average-e2eD) and an admission controller decides
whether to accept.  This example runs the same arrival trace under three
controllers:

* the exact Eq. 6 test (what the paper's model recommends, if you can
  afford global knowledge);
* the conservative clique constraint (Eq. 13 — the paper's distributed
  winner);
* the plain clique constraint (Eq. 11 — blind to background traffic).

Watch the last column: the clique controller "accepts more", but its
admissions repeatedly push the network beyond what any schedule can
deliver.

Run:  python examples/churn_admission.py
"""

from repro import ProtocolInterferenceModel, paper_random_topology
from repro.workloads import ChurnConfig, simulate_churn


def main() -> None:
    network = paper_random_topology(seed=8)
    model = ProtocolInterferenceModel(network)
    config = ChurnConfig(n_arrivals=20)

    print("policy        admitted  blocked  false-accepts  overloads")
    for policy in ("truth", "conservative", "clique"):
        outcome = simulate_churn(network, model, policy, config=config,
                                 seed=17)
        print(
            f"{policy:<13s} {outcome.admitted:>8d} "
            f"{outcome.arrivals - outcome.admitted:>8d} "
            f"{outcome.false_accepts:>13d} "
            f"{outcome.overload_admissions:>9d}"
        )
    print(
        "\nThe exact test and the conservative estimate keep the network "
        "deliverable;\nthe background-blind clique constraint trades "
        "correctness for admissions."
    )


if __name__ == "__main__":
    main()
