"""Quickstart: the paper's Section 5.1 example in a dozen lines.

Builds the four-link chain of Fig. 1 (Scenario II), asks the core model
for the maximum end-to-end throughput, and prints the optimal link
schedule — including the time slice where link L1 drops from 54 to
36 Mbps so that L4 can transmit concurrently, which is exactly why the
classical clique constraint under-counts the capacity.

Run:  python examples/quickstart.py
"""

from repro import available_path_bandwidth, scenario_two
from repro.core import RateClique, fixed_rate_equal_throughput_bound


def main() -> None:
    bundle = scenario_two()
    result = available_path_bandwidth(bundle.model, bundle.path)

    print(f"path: {bundle.path}")
    print(f"maximum end-to-end throughput: {result.available_bandwidth:.1f} Mbps")
    print()
    print("optimal schedule (independent sets with their time shares):")
    print(result.schedule)
    print()

    # The best any fixed rate assignment can do is 108/7 ~ 15.43 Mbps:
    table = bundle.network.radio.rate_table
    clique = RateClique.from_pairs(
        [
            (bundle.network.link("L1"), table.get(36.0)),
            (bundle.network.link("L2"), table.get(54.0)),
            (bundle.network.link("L3"), table.get(54.0)),
        ]
    )
    bound = fixed_rate_equal_throughput_bound(clique)
    gain = result.available_bandwidth / bound
    print(f"best fixed-rate clique bound (Eq. 7): {bound:.2f} Mbps")
    print(f"link adaptation gain: {gain:.3f}x")


if __name__ == "__main__":
    main()
