#!/usr/bin/env python
"""Deterministic solver-counter regression gate for the bench-smoke CI job.

Timings are noisy on shared CI runners, but the solver *counters* the
``repro.obs`` layer records — DFS nodes explored, column-generation
iterations, LP solves — are deterministic for a fixed instance.  This
tool diffs the counters of a fresh bench-smoke trace (written by
``tools/bench_runner.py --smoke --trace-json``) against the committed
``BENCH_<date>.json`` baseline and fails on *unexplained growth*: a
tracked counter exceeding its baseline means an algorithmic regression
(more work per solve), which a wall-clock gate would miss in the noise.

Two baseline sources:

* a committed ``BENCH_<date>.json`` trajectory file (the original mode)::

    python tools/bench_runner.py --smoke --trace-json smoke-trace.json
    python tools/bench_compare.py smoke-trace.json --baseline BENCH_2026-08-06.json

* the ``repro.obs`` run-history store — the last *recorded* bench run is
  the baseline and the newest one the candidate, so the gate tracks the
  store instead of a hand-appended JSON blob::

    python tools/bench_runner.py --smoke --history-dir .repro-history
    python tools/bench_compare.py --history .repro-history

Counters *dropping* below baseline is fine (that is an optimization,
report-only); growth beyond ``--tolerance`` (default 0, counters are
exact) fails with exit code 1.  Exit code 2 means the inputs were
unusable (missing file, no counter-bearing baseline run).  A history
store with fewer than two runs exits 0 — the first CI run after a cache
reset has nothing to gate against yet.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Counters gated for regression.  All are deterministic per instance:
#: the smoke run re-solves the same 4-hop chain every time, so any growth
#: is an algorithmic change, not noise.
TRACKED_COUNTERS = (
    "enum.dfs_nodes",
    "cg.iterations",
    "cg.columns_added",
    "lp.solves",
)

#: Serving-layer counters (the bench-X5 segment), gated only when BOTH
#: records carry them: baselines predating the serving layer have no
#: ``serve.*`` counters, and their absence must not read as a
#: regression the way a missing tracked counter does.  Misses growing
#: means cache keys stopped matching (a caching regression); hits are
#: deterministic for the fixed query stream, so any change is a
#: behaviour change worth failing on.
SERVE_COUNTERS = (
    "serve.queries",
    "serve.cache.enum.misses",
    "serve.cache.master.misses",
    "serve.cache.result.misses",
    "serve.lp.warm_starts",
)

#: Online-controller counters (the bench online-churn segment), gated
#: under the same both-sides rule as :data:`SERVE_COUNTERS`.  The churn
#: stream is seed-fixed, so these are deterministic: retirements or
#: warm re-solves *changing* means the incremental machinery changed
#: behaviour, and rebuild fallbacks *growing* means cached unions
#: stopped matching — the exact regression the incremental controller
#: exists to prevent.
ONLINE_COUNTERS = (
    "online.arrivals",
    "online.warm_resolves",
    "online.rebuild_fallbacks",
    "online.column_retirements",
    "online.cache.result.misses",
)

#: Tile-decomposition counters (the bench scale segment), gated under
#: the same both-sides rule.  The scale instance is seed-fixed, so the
#: tile count, per-tile LP solves and restricted-column family size are
#: deterministic: tiles *growing* means the decomposer stopped merging
#: runs, and columns growing means the restricted LB family bloated —
#: both are the decomposition doing more work per estimate.
SCALE_COUNTERS = (
    "scale.tiles",
    "scale.tile_solves",
    "scale.columns",
)

#: Provenance counters (dual certificates and explanations built), gated
#: under the same both-sides rule.  For a fixed workload these are
#: deterministic: certificates *growing* means something started
#: certifying per query instead of per solve (an overhead regression on
#: the explain-off path), and explanations growing means provenance is
#: being built where it wasn't asked for.
EXPLAIN_COUNTERS = (
    "explain.certificates",
    "explain.explanations",
)

#: The smoke run solves only the 4-hop instance; compare against that row.
SMOKE_HOPS = 4


def _load_json(path: Path) -> dict:
    """Parse ``path`` as JSON, failing with a usable one-line message.

    Malformed JSON (a truncated trace from a crashed runner, say) is a
    usage error, not a regression: the caller maps it to exit code 2 so
    CI distinguishes "inputs unusable" from "counters grew".
    """
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed JSON: {error}") from error
    except OSError as error:
        raise OSError(f"{path}: unreadable: {error}") from error
    if not isinstance(document, dict):
        raise ValueError(
            f"{path}: expected a JSON object, got {type(document).__name__}"
        )
    return document


def _default_baseline() -> Path | None:
    candidates = sorted(REPO_ROOT.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def baseline_counters(document: dict) -> tuple[str, dict]:
    """Summed per-segment counters of the latest counter-bearing run.

    Early baseline runs predate the obs layer and carry no ``counters``
    key; the newest run that has them is the comparison point.  The
    smoke trace merges all three measured segments (enumeration,
    end-to-end, column generation) into one counter table, so the
    baseline row's per-segment counters are summed to match.
    """
    for run in reversed(document.get("runs", [])):
        rows = [
            row
            for row in run.get("solver_scaling", [])
            if row.get("hops") == SMOKE_HOPS and "counters" in row
        ]
        if not rows:
            continue
        totals: dict = {}
        for segment in rows[0]["counters"].values():
            for name, value in segment.items():
                totals[name] = totals.get(name, 0) + value
        return run.get("label", "?"), totals
    raise LookupError(
        f"no run with per-segment counters for the {SMOKE_HOPS}-hop "
        "instance found in the baseline file"
    )


def compare(
    smoke: dict, baseline: dict, tolerance: float = 0.0
) -> tuple[list[str], list[str]]:
    """Return (report lines, regression lines) for the tracked counters."""
    lines = []
    regressions = []
    serve_gated = [
        name
        for name in (
            *SERVE_COUNTERS,
            *ONLINE_COUNTERS,
            *SCALE_COUNTERS,
            *EXPLAIN_COUNTERS,
        )
        if name in baseline and name in smoke
    ]
    width = max(
        len(name) for name in (*TRACKED_COUNTERS, *serve_gated)
    )
    for name in (*TRACKED_COUNTERS, *serve_gated):
        expected = baseline.get(name)
        observed = smoke.get(name)
        if expected is None or observed is None:
            regressions.append(
                f"{name}: missing from "
                f"{'baseline' if expected is None else 'smoke trace'}"
            )
            continue
        limit = expected * (1.0 + tolerance)
        if observed > limit:
            verdict = "REGRESSION"
            regressions.append(
                f"{name}: {observed} > baseline {expected}"
                + (f" (+{tolerance:.0%} tolerance)" if tolerance else "")
            )
        elif observed < expected:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(
            f"  {name:<{width}}  baseline {expected:>6}  "
            f"observed {observed:>6}  {verdict}"
        )
    return lines, regressions


def _evaluate_slo(record: dict, slo_path: str) -> int:
    """Check ``record``'s metrics against the SLO file; 0/1/2 exit code."""
    from repro.obs.slo import evaluate_slos, format_slo_results, load_slo_file

    try:
        config = load_slo_file(slo_path)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    results = evaluate_slos(config, record)
    print(format_slo_results(results))
    if any(result["status"] == "fail" for result in results):
        return 1
    return 0


def _compare_history(
    history_dir: str, tolerance: float, slo: str | None = None
) -> int:
    """Gate the newest history record against the one before it.

    With ``slo`` set, the newest record is additionally checked against
    the SLO file — a burn fails the gate even when every counter held.
    """
    from repro.obs.history import HistoryStore

    store = HistoryStore(history_dir)
    records = [r for r in store.runs() if r.get("counters")]
    if not records:
        print(
            f"no counter-bearing runs in history store {store.path}",
            file=sys.stderr,
        )
        return 2
    if len(records) < 2:
        print(
            f"history store {store.path} holds one run; nothing to gate "
            "against yet"
        )
        return _evaluate_slo(records[-1], slo) if slo is not None else 0
    baseline, candidate = records[-2], records[-1]
    lines, regressions = compare(
        candidate["counters"], baseline["counters"], tolerance=tolerance
    )
    print(
        f"solver counters: history run {candidate.get('run_id', '?')!r} vs "
        f"baseline run {baseline.get('run_id', '?')!r}"
    )
    for line in lines:
        print(line)
    exit_code = 0
    if regressions:
        print("counter regressions detected:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        exit_code = 1
    else:
        print("no counter regressions")
    if slo is not None:
        exit_code = max(exit_code, _evaluate_slo(candidate, slo))
    return exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="bench-smoke run report (bench_runner.py --smoke --trace-json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_<date>.json (default: newest in repo root)",
    )
    parser.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="gate the newest run in this repro.obs history store against "
        "the previous one instead of comparing a trace file",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="allowed fractional growth before failing (default 0: "
        "tracked counters are deterministic)",
    )
    parser.add_argument(
        "--slo",
        metavar="FILE",
        default=None,
        help="also check the candidate's metrics (histogram quantiles, "
        "hit-rate floors, error budgets) against this .repro-slo.toml — "
        "a burn fails the gate like a counter regression",
    )
    args = parser.parse_args(argv)

    if args.history is not None:
        if args.trace is not None:
            print(
                "--history replaces the trace argument; give one or the "
                "other",
                file=sys.stderr,
            )
            return 2
        return _compare_history(args.history, args.tolerance, slo=args.slo)
    if args.trace is None:
        print("a trace file (or --history DIR) is required", file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline else _default_baseline()
    )
    if baseline_path is None or not baseline_path.exists():
        print(f"baseline file not found: {baseline_path}", file=sys.stderr)
        return 2
    trace_path = Path(args.trace)
    if not trace_path.exists():
        print(f"smoke trace not found: {trace_path}", file=sys.stderr)
        return 2

    try:
        trace = _load_json(trace_path)
        document = _load_json(baseline_path)
    except (ValueError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        label, expected = baseline_counters(document)
    except LookupError as error:
        print(f"{baseline_path}: {error}", file=sys.stderr)
        return 2

    lines, regressions = compare(
        trace.get("counters", {}), expected, tolerance=args.tolerance
    )
    print(
        f"solver counters: {trace_path.name} vs "
        f"{baseline_path.name} run {label!r}"
    )
    for line in lines:
        print(line)
    exit_code = 0
    if regressions:
        print("counter regressions detected:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        exit_code = 1
    else:
        print("no counter regressions")
    if args.slo is not None:
        exit_code = max(exit_code, _evaluate_slo(trace, args.slo))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
