#!/usr/bin/env python
"""SLO gate: check a metrics document against ``.repro-slo.toml``.

Reads one metrics-bearing JSON document — the newest line of a
``--metrics-jsonl`` stream, a ``--trace-json`` run report, or a history
record — and evaluates every ``[[objective]]`` in the SLO file against
its counters/gauges/histograms (see :mod:`repro.obs.slo` for the
objective kinds).  CI runs it after the bench smoke::

    python tools/bench_runner.py --smoke --metrics-jsonl metrics.jsonl
    python tools/slo_check.py metrics.jsonl --slo .repro-slo.toml

Exit codes: 0 every objective passed (or was skipped as optional /
no-traffic), 1 at least one objective failed (latency ceiling pierced,
hit-rate floor broken, error budget burned), 2 the inputs were unusable
(missing/malformed metrics or SLO file, zero usable snapshots).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

DEFAULT_SLO = REPO_ROOT / ".repro-slo.toml"


def load_metrics_document(path: Path) -> dict:
    """The metrics document at ``path``.

    ``.jsonl`` streams yield their newest well-formed line; anything
    else must parse as one JSON object.  Raises ``ValueError`` when no
    usable document exists.
    """
    if path.suffix == ".jsonl":
        from repro.obs.metrics import read_metrics_jsonl

        records = read_metrics_jsonl(str(path))
        if not records:
            raise ValueError(f"{path}: no metrics snapshots")
        return records[-1]
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed JSON: {error}") from error
    if not isinstance(document, dict):
        raise ValueError(
            f"{path}: expected a JSON object, got {type(document).__name__}"
        )
    return document


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "metrics",
        metavar="PATH",
        help="metrics document: a --metrics-jsonl stream (newest line), "
        "a --trace-json run report, or any JSON object with "
        "counters/gauges/histograms",
    )
    parser.add_argument(
        "--slo",
        metavar="FILE",
        default=str(DEFAULT_SLO),
        help=f"SLO definitions (default {DEFAULT_SLO.name})",
    )
    parser.add_argument(
        "--objective",
        metavar="NAME",
        action="append",
        default=None,
        help="check only the named objective (repeatable) — for lanes "
        "that record a subset of the instrumented metrics; an unknown "
        "name is a usage error",
    )
    args = parser.parse_args(argv)

    from repro.obs.slo import evaluate_slos, format_slo_results, load_slo_file

    try:
        config = load_slo_file(args.slo)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    try:
        document = load_metrics_document(Path(args.metrics))
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.objective:
        known = {
            objective.get("name") for objective in config.get("objective", [])
        }
        unknown = [name for name in args.objective if name not in known]
        if unknown:
            print(
                f"unknown objective(s) {', '.join(unknown)}; "
                f"{args.slo} defines: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        config = {
            **config,
            "objective": [
                objective
                for objective in config.get("objective", [])
                if objective.get("name") in args.objective
            ],
        }

    results = evaluate_slos(config, document)
    print(format_slo_results(results))
    if any(result["status"] == "fail" for result in results):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
