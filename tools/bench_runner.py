#!/usr/bin/env python
"""Benchmark harness: run the ``benchmarks/bench_a*.py`` suite and record a
``BENCH_<date>.json`` trajectory file.

Two kinds of measurement go into the file:

* **solver scaling** — the bench-A6 chain instances re-measured directly
  (best of N repeats, fresh interference model per repeat so caches never
  carry over), with separate enumeration-only, end-to-end and
  column-generation timings; this is the number the perf acceptance
  criteria track across PRs;
* **serve throughput** — the bench-X5 admission-query stream answered
  cold (per-query re-solving) and warm (through ``repro.serve``), with
  queries/sec, p50/p99 decision latency and the ``serve.*`` cache
  counters;
* **online churn** — the X6 churn stream replayed through the
  incremental online controller and the rebuild-per-event baseline
  (identical decisions asserted), with decisions/sec, speedup, p50/p99
  latency and the ``online.*`` counters;
* **scale** — the bench-X7 fixed-seed scatter field estimated with the
  interference-tile decomposition and (full runs) the exact global
  Eq. 6 enumeration, with the bracket asserted, the tiled-over-exact
  speedup, and the ``scale.*`` counters;
* **pytest pass/fail** of the ablation benchmark files, so a timing run
  also proves the benchmarks still assert the paper's facts.

Runs are appended under distinct labels, so one file can hold the
pre-optimization baseline and the post-optimization numbers side by side::

    python tools/bench_runner.py --label optimized
    python tools/bench_runner.py --smoke          # CI: errors fail, timing never does

The harness only ever *adds* runs to an existing file for the same date —
it never rewrites history.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path as _FsPath

REPO_ROOT = _FsPath(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Chain lengths (hops) of the solver-scaling measurement — bench A6's
#: LENGTHS, including the 10-hop size the optimized enumeration affords.
LENGTHS = (4, 6, 8, 10)
#: Repeats per instance; the minimum is reported (steady-state floor).
REPEATS = 3


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


def measure_solver_scaling(lengths=LENGTHS, repeats=REPEATS):
    """Bench-A6 instances, timed directly (fresh model per repeat).

    Each timed segment runs under its own ``repro.obs`` recorder; the
    segment's counter snapshot (DFS nodes, cache hits, CG iterations, LP
    solves …) lands in the row's ``counters`` key, so the trajectory file
    records *why* a timing moved, not just that it did.  Counters are
    deterministic per instance, so the last repeat's snapshot stands for
    all of them.  The segments' span trees are also grafted into the
    ambient recorder (when one is active) for ``--trace-json``.
    """
    from repro import Path, available_path_bandwidth, solve_with_column_generation
    from repro.core.independent_sets import enumerate_maximal_independent_sets
    from repro.interference.protocol import ProtocolInterferenceModel
    from repro.net.generators import chain_topology
    from repro.obs import Recorder, get_recorder, use_recorder

    ambient = get_recorder()
    rows = []
    for hops in lengths:
        network = chain_topology(hops + 1, 70.0)
        path = Path(
            [network.link_between(f"n{i}", f"n{i + 1}") for i in range(hops)]
        )
        enum_seconds = end_to_end_seconds = cg_seconds = float("inf")
        exact = cg = None
        counters = {}
        for _ in range(repeats):
            model = ProtocolInterferenceModel(network)
            recorder = Recorder()
            started = time.perf_counter()
            with use_recorder(recorder):
                sets = enumerate_maximal_independent_sets(
                    model, list(path.links)
                )
            elapsed = time.perf_counter() - started
            enum_seconds = min(enum_seconds, elapsed)
            counters["enumeration"] = recorder.counters
            ambient.merge(
                recorder.snapshot(),
                under=f"bench.enum[{hops}]",
                seconds=elapsed,
            )

            model = ProtocolInterferenceModel(network)
            recorder = Recorder()
            started = time.perf_counter()
            with use_recorder(recorder):
                exact = available_path_bandwidth(model, path)
            elapsed = time.perf_counter() - started
            end_to_end_seconds = min(end_to_end_seconds, elapsed)
            counters["end_to_end"] = recorder.counters
            ambient.merge(
                recorder.snapshot(),
                under=f"bench.end_to_end[{hops}]",
                seconds=elapsed,
            )

            model = ProtocolInterferenceModel(network)
            recorder = Recorder()
            started = time.perf_counter()
            with use_recorder(recorder):
                cg = solve_with_column_generation(model, path)
            elapsed = time.perf_counter() - started
            cg_seconds = min(cg_seconds, elapsed)
            counters["column_generation"] = recorder.counters
            ambient.merge(
                recorder.snapshot(),
                under=f"bench.cg[{hops}]",
                seconds=elapsed,
            )
        if abs(
            cg.result.available_bandwidth - exact.available_bandwidth
        ) > 1e-6 * max(1.0, abs(exact.available_bandwidth)):
            raise AssertionError(
                f"optimum mismatch at {hops} hops: enumeration "
                f"{exact.available_bandwidth} vs column generation "
                f"{cg.result.available_bandwidth}"
            )
        rows.append(
            {
                "hops": hops,
                "optimum_mbps": exact.available_bandwidth,
                "cg_optimum_mbps": cg.result.available_bandwidth,
                "columns_enumerated": len(exact.independent_sets),
                "columns_generated": cg.columns_generated,
                "independent_sets": len(sets),
                "enumeration_seconds": enum_seconds,
                "end_to_end_seconds": end_to_end_seconds,
                "cg_seconds": cg_seconds,
                "counters": counters,
            }
        )
    return rows


def measure_serve_throughput(repeats: int = REPEATS):
    """Serving-layer throughput: cold per-query re-solving vs warm cache.

    Serves :func:`repro.workloads.scenarios.admission_query_workload`
    (the 30-node paper topology) both ways, best of ``repeats``, and
    asserts the answers are identical before reporting.  The segment
    runs under its own recorder; only its ``serve.*`` counters are
    copied into the ambient recorder (plus the span tree under
    ``bench.serve``), so the history gate sees the new serving counters
    without the segment's LP/enumeration work inflating the gated
    solver counters of the scaling segments.
    """
    from repro.core.bandwidth import available_path_bandwidth
    from repro.obs import Recorder, get_recorder, use_recorder
    from repro.serve import AdmissionService, summarize_decisions
    from repro.workloads.scenarios import admission_query_workload

    ambient = get_recorder()
    workload = admission_query_workload()
    cold_seconds = warm_seconds = float("inf")
    cold = {}
    decisions = []
    recorder = Recorder()
    for _ in range(repeats):
        recorder = Recorder()
        started = time.perf_counter()
        with use_recorder(recorder):
            cold = {}
            for query in workload.queries:
                result = available_path_bandwidth(
                    workload.model, query.path, workload.background
                )
                cold[query.query_id] = (
                    result.available_bandwidth,
                    result.supports(query.demand_mbps),
                )
        cold_seconds = min(cold_seconds, time.perf_counter() - started)

        started = time.perf_counter()
        with use_recorder(recorder):
            service = AdmissionService(workload.model, workload.background)
            decisions = service.submit_many(workload.queries)
        warm_seconds = min(warm_seconds, time.perf_counter() - started)
    # Counters are deterministic per repeat; the last repeat's recorder
    # stands for all of them (mirrors measure_solver_scaling).
    serve_counters = {
        name: value
        for name, value in recorder.counters.items()
        if name.startswith("serve.")
    }
    snapshot = recorder.snapshot()
    ambient.merge(
        {
            "counters": serve_counters,
            "gauges": {
                name: value
                for name, value in recorder.gauges.items()
                if name.startswith("serve.")
            },
            "histograms": {
                name: data
                for name, data in snapshot.get("histograms", {}).items()
                if name.startswith("serve.")
            },
            "spans": snapshot["spans"],
        },
        under="bench.serve",
        seconds=cold_seconds + warm_seconds,
    )
    for decision in decisions:
        bandwidth, admitted = cold[decision.query_id]
        if (
            decision.available_bandwidth_mbps != bandwidth
            or decision.admitted != admitted
        ):
            raise AssertionError(
                f"serve mismatch on {decision.query_id}: warm "
                f"({decision.available_bandwidth_mbps}, {decision.admitted}) "
                f"vs cold ({bandwidth}, {admitted})"
            )
    summary = summarize_decisions(decisions, warm_seconds)
    return {
        "queries": len(workload.queries),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "cold_qps": len(workload.queries) / cold_seconds,
        "warm_qps": summary["queries_per_second"],
        "p50_latency_seconds": summary["p50_latency_seconds"],
        "p99_latency_seconds": summary["p99_latency_seconds"],
        "admitted": summary["admitted"],
        "counters": serve_counters,
    }


def measure_online_churn(repeats: int = REPEATS, n_events: int = 500):
    """Online admission under churn: incremental vs rebuild-per-event.

    Replays :func:`repro.workloads.scenarios.online_churn_workload` (the
    churn-smoke CI stream) through the incremental controller and the
    rebuild-per-event baseline, best of ``repeats`` each, and asserts
    the decision streams are identical (byte-identity is the contract —
    the caches may only change *cost*, never an answer) before
    reporting.  Each controller runs under its own recorder so the
    baseline's ``online.rebuild_fallbacks`` cannot pollute the
    incremental controller's gated counters; only the incremental
    side's ``online.*`` counters are merged into the ambient recorder
    (plus both span trees under ``bench.online``).
    """
    from repro.obs import Recorder, get_recorder, use_recorder
    from repro.serve import summarize_online_decisions
    from repro.serve.online import OnlineAdmissionController, run_online_session
    from repro.workloads.scenarios import online_churn_workload

    ambient = get_recorder()
    workload = online_churn_workload(n_events=n_events)
    online_seconds = rebuild_seconds = float("inf")
    online_decisions = []
    rebuild_decisions = []
    recorder = Recorder()
    spans = []
    for _ in range(repeats):
        recorder = Recorder()
        with use_recorder(recorder):
            controller = OnlineAdmissionController(workload.model)
            online_decisions, wall = run_online_session(
                controller, workload.events
            )
        online_seconds = min(online_seconds, wall)

        rebuild_recorder = Recorder()
        with use_recorder(rebuild_recorder):
            baseline = OnlineAdmissionController(
                workload.model, incremental=False
            )
            rebuild_decisions, wall = run_online_session(
                baseline, workload.events
            )
        rebuild_seconds = min(rebuild_seconds, wall)
        spans = (
            recorder.snapshot()["spans"]
            + rebuild_recorder.snapshot()["spans"]
        )

    def _essence(decision):
        # Everything except what legitimately differs between the two
        # controllers: latency and the cache path taken.
        return (
            decision.seq,
            decision.flow_id,
            decision.routed,
            decision.path_nodes,
            decision.admitted,
            decision.available_bandwidth_mbps,
            decision.carried_flows,
            decision.fingerprint,
        )

    if len(online_decisions) != len(rebuild_decisions):
        raise AssertionError(
            f"online churn decision counts diverged: incremental "
            f"{len(online_decisions)} vs rebuild {len(rebuild_decisions)}"
        )
    for warm, cold in zip(online_decisions, rebuild_decisions):
        if _essence(warm) != _essence(cold):
            raise AssertionError(
                f"online churn decision diverged on {warm.flow_id}: "
                f"incremental {_essence(warm)} vs rebuild {_essence(cold)}"
            )

    online_counters = {
        name: value
        for name, value in recorder.counters.items()
        if name.startswith("online.")
    }
    snapshot = recorder.snapshot()
    ambient.merge(
        {
            "counters": online_counters,
            "gauges": {
                name: value
                for name, value in recorder.gauges.items()
                if name.startswith("online.")
            },
            "histograms": {
                name: data
                for name, data in snapshot.get("histograms", {}).items()
                if name.startswith("online.")
            },
            "spans": spans,
        },
        under="bench.online",
        seconds=online_seconds + rebuild_seconds,
    )
    summary = summarize_online_decisions(online_decisions, online_seconds)
    return {
        "events": len(workload.events),
        "decisions": len(online_decisions),
        "online_seconds": online_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / online_seconds,
        "online_dps": summary["decisions_per_second"],
        "rebuild_dps": len(rebuild_decisions) / rebuild_seconds,
        "p50_latency_seconds": summary["p50_latency_seconds"],
        "p99_latency_seconds": summary["p99_latency_seconds"],
        "admitted": summary["admitted"],
        "counters": online_counters,
    }


def measure_scale(
    repeats: int = REPEATS, n_nodes: int = 192, with_exact: bool = True
):
    """Tiled estimation at scale: the bench-X7 scatter field re-measured.

    Rebuilds the fixed-seed constant-density instance from
    ``benchmarks/bench_x7_scale.py`` (192 nodes in full runs, a smaller
    field in smoke), times the interference-tile estimate best of
    ``repeats`` (fresh recorder per repeat so nothing carries over),
    and — when ``with_exact`` — times the exact global Eq. 6
    enumeration and asserts the tiled bracket contains its optimum
    before reporting.  Only the segment's ``scale.*`` counters and
    gauges are merged into the ambient recorder (plus the span tree
    under ``bench.scale``), so the history gate sees the tiling
    counters without this segment's LP work inflating the solver
    counters of the scaling segments.
    """
    import networkx as nx

    from repro.core.bandwidth import available_path_bandwidth
    from repro.interference.protocol import ProtocolInterferenceModel
    from repro.net.generators import scatter_topology
    from repro.net.path import Path
    from repro.obs import Recorder, get_recorder, use_recorder
    from repro.scale import TileConfig, tiled_path_bandwidth

    ambient = get_recorder()
    # Constant node density: the full 192-node field is 850 x 1275 m.
    side = (n_nodes / 192.0) ** 0.5
    network = scatter_topology(
        n_nodes, 850.0 * side, 1275.0 * side, seed=8
    )
    model = ProtocolInterferenceModel(network)
    graph = network.to_digraph()
    reachable = nx.single_source_shortest_path(graph, "n0")
    farthest = max(reachable, key=lambda node: len(reachable[node]))
    hops = reachable[farthest]
    new_path = Path(
        network.link_between(a, b) for a, b in zip(hops, hops[1:])
    )
    background = []
    for source, destination in (
        ("n5", f"n{n_nodes // 2}"),
        (f"n{n_nodes // 3}", f"n{n_nodes - 3}"),
    ):
        try:
            bg_hops = nx.shortest_path(graph, source, destination)
        except nx.NetworkXException:
            continue
        if len(bg_hops) >= 2:
            background.append(
                (
                    Path(
                        network.link_between(a, b)
                        for a, b in zip(bg_hops, bg_hops[1:])
                    ),
                    0.5,
                )
            )

    tiled_seconds = float("inf")
    estimate = None
    recorder = Recorder()
    for _ in range(repeats):
        recorder = Recorder()
        with use_recorder(recorder):
            started = time.perf_counter()
            estimate = tiled_path_bandwidth(
                model, new_path, background, TileConfig(tile_size=6)
            )
            tiled_seconds = min(
                tiled_seconds, time.perf_counter() - started
            )
    recorder.gauge("scale.estimate_seconds", tiled_seconds)
    scale_counters = {
        name: value
        for name, value in recorder.counters.items()
        if name.startswith("scale.")
    }
    snapshot = recorder.snapshot()
    ambient.merge(
        {
            "counters": scale_counters,
            "gauges": {
                name: value
                for name, value in recorder.gauges.items()
                if name.startswith("scale.")
            },
            "spans": snapshot["spans"],
        },
        under="bench.scale",
        seconds=tiled_seconds,
    )
    row = {
        "nodes": n_nodes,
        "hops": len(new_path),
        "tiles": len(estimate.tiles),
        "columns": estimate.columns,
        "lower_bound_mbps": estimate.lower_bound,
        "upper_bound_mbps": estimate.upper_bound,
        "tiled_seconds": tiled_seconds,
        "counters": scale_counters,
    }
    if with_exact:
        exact_seconds = float("inf")
        exact_mbps = None
        for _ in range(max(1, repeats - 1)):
            started = time.perf_counter()
            exact_mbps = available_path_bandwidth(
                model, new_path, background
            ).available_bandwidth
            exact_seconds = min(
                exact_seconds, time.perf_counter() - started
            )
        tolerance = 1e-6 * max(1.0, abs(exact_mbps))
        if not (
            estimate.lower_bound <= exact_mbps + tolerance
            and exact_mbps <= estimate.upper_bound + tolerance
        ):
            raise AssertionError(
                f"tiled bracket [{estimate.lower_bound}, "
                f"{estimate.upper_bound}] does not contain the exact "
                f"optimum {exact_mbps} at {n_nodes} nodes"
            )
        row["exact_mbps"] = exact_mbps
        row["exact_seconds"] = exact_seconds
        row["speedup"] = exact_seconds / tiled_seconds
    return row


def run_pytest_benchmarks(smoke: bool = False):
    """Run the ablation benchmark files under pytest.

    In smoke mode the expensive timing plugin is skipped and only the A*
    files run (collection or assertion errors fail, timings never do).
    """
    targets = sorted(
        str(p.relative_to(REPO_ROOT))
        for p in (REPO_ROOT / "benchmarks").glob("bench_a*.py")
    )
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        "-q",
        "-p",
        "no:cacheprovider",
        "--benchmark-disable",
        *targets,
    ]
    completed = subprocess.run(
        cmd,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(SRC)},
        capture_output=True,
        text=True,
    )
    tail = "\n".join(completed.stdout.strip().splitlines()[-3:])
    return {
        "command": " ".join(cmd[2:]),
        "returncode": completed.returncode,
        "summary": tail,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="run",
        help="name for this run inside the JSON file (e.g. seed, optimized)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: 4-hop instance only, one repeat, no JSON write; "
        "exit non-zero on errors, never on timings",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="output path (default BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--skip-pytest",
        action="store_true",
        help="record solver-scaling timings only",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="also write the repro.obs run report (spans + counters of the "
        "solver-scaling measurement) to PATH",
    )
    parser.add_argument(
        "--trace-events",
        metavar="PATH",
        default=None,
        help="record per-span events during the measurement and write a "
        "Chrome trace-event timeline (Perfetto-loadable) to PATH",
    )
    parser.add_argument(
        "--history-dir",
        metavar="DIR",
        default=None,
        help="append this measurement's record (counters, span totals, "
        "environment) to the repro.obs run-history store under DIR — "
        "the CI bench gate diffs consecutive records",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="export the measurement's counters/gauges/histograms in "
        "the OpenMetrics text format to PATH",
    )
    parser.add_argument(
        "--metrics-jsonl",
        metavar="PATH",
        default=None,
        help="append one metrics snapshot line (JSONL) for the "
        "measurement to PATH — slo_check.py and 'repro obs tail' "
        "consume this",
    )
    args = parser.parse_args(argv)

    from repro.obs import (
        HistoryStore,
        Recorder,
        append_metrics_jsonl,
        args_fingerprint,
        build_run_record,
        use_recorder,
        write_openmetrics,
        write_run_report,
        write_trace_events,
    )

    def export_metrics(recorder):
        if args.metrics_out:
            write_openmetrics(recorder, args.metrics_out)
            print(f"wrote OpenMetrics export -> {args.metrics_out}")
        if args.metrics_jsonl:
            append_metrics_jsonl(recorder, args.metrics_jsonl)
            print(f"appended metrics snapshot -> {args.metrics_jsonl}")

    def record_history(recorder, label, wall_seconds, lengths, repeats):
        if args.history_dir is None:
            return
        store = HistoryStore(args.history_dir)
        record = build_run_record(
            recorder,
            experiments=["bench"],
            label=label,
            wall_seconds=wall_seconds,
            fingerprint=args_fingerprint(
                {"lengths": list(lengths), "repeats": repeats}
            ),
        )
        store.append(record)
        print(f"recorded bench run {record['run_id']} -> {store.path}")

    if args.smoke:
        recorder = Recorder(events=args.trace_events is not None)
        started = time.perf_counter()
        with use_recorder(recorder):
            rows = measure_solver_scaling(lengths=(4,), repeats=1)
            serve_row = measure_serve_throughput(repeats=1)
            online_row = measure_online_churn(repeats=1, n_events=200)
            scale_row = measure_scale(repeats=1, n_nodes=96)
        wall = time.perf_counter() - started
        if args.trace_json:
            write_run_report(recorder, args.trace_json)
            print(f"wrote obs run report -> {args.trace_json}")
        if args.trace_events:
            write_trace_events(recorder, args.trace_events)
            print(f"wrote trace-event timeline -> {args.trace_events}")
        export_metrics(recorder)
        record_history(recorder, "bench-smoke", wall, (4,), 1)
        print(f"smoke solver scaling ok: {rows[0]['optimum_mbps']:.4f} Mbps")
        print(
            f"smoke serve throughput ok: {serve_row['speedup']:.1f}x warm "
            f"over cold ({serve_row['warm_qps']:.0f} q/s, "
            f"p99 {serve_row['p99_latency_seconds'] * 1e3:.3f} ms)"
        )
        print(
            f"smoke online churn ok: {online_row['speedup']:.1f}x "
            f"incremental over rebuild ({online_row['decisions']} decisions, "
            f"{online_row['online_dps']:.0f} dec/s, "
            f"p99 {online_row['p99_latency_seconds'] * 1e3:.3f} ms)"
        )
        # No speedup in the smoke line: exact is cheap at smoke size, so
        # the ratio is noise there — the bracket assertion is the point.
        print(
            f"smoke scale ok: {scale_row['nodes']} nodes, "
            f"{scale_row['tiles']} tiles, bracket "
            f"[{scale_row['lower_bound_mbps']:.3f}, "
            f"{scale_row['upper_bound_mbps']:.3f}] Mbps contains "
            f"exact {scale_row['exact_mbps']:.3f}"
        )
        pytest_result = run_pytest_benchmarks(smoke=True)
        print(pytest_result["summary"])
        return 0 if pytest_result["returncode"] == 0 else 1

    recorder = Recorder(events=args.trace_events is not None)
    started = time.perf_counter()
    with use_recorder(recorder):
        scaling = measure_solver_scaling()
        serve_row = measure_serve_throughput()
        online_row = measure_online_churn()
        scale_row = measure_scale()
    wall = time.perf_counter() - started
    if args.trace_json:
        write_run_report(recorder, args.trace_json)
        print(f"wrote obs run report -> {args.trace_json}")
    if args.trace_events:
        write_trace_events(recorder, args.trace_events)
        print(f"wrote trace-event timeline -> {args.trace_events}")
    export_metrics(recorder)
    run_entry = {
        "label": args.label,
        "git_commit": _git_commit(),
        "python": platform.python_version(),
        "solver_scaling": scaling,
        "serve_throughput": serve_row,
        "online_churn": online_row,
        "scale": scale_row,
    }
    if not args.skip_pytest:
        pytest_result = run_pytest_benchmarks()
        run_entry["pytest_benchmarks"] = pytest_result
        if pytest_result["returncode"] != 0:
            print(pytest_result["summary"], file=sys.stderr)
            print("benchmark suite FAILED; not recording run", file=sys.stderr)
            return 1
    # Like the BENCH file, history only records runs whose assertions held.
    record_history(recorder, args.label, wall, LENGTHS, REPEATS)

    date = _dt.date.today().isoformat()
    output = (
        _FsPath(args.output)
        if args.output
        else REPO_ROOT / f"BENCH_{date}.json"
    )
    if output.exists():
        document = json.loads(output.read_text())
    else:
        document = {"date": date, "runs": []}
    document["runs"].append(run_entry)
    output.write_text(json.dumps(document, indent=2) + "\n")

    print(f"recorded run {args.label!r} -> {output}")
    header = f"{'hops':>5} {'enum ms':>9} {'e2e ms':>9} {'cg ms':>9} {'optimum':>9}"
    print(header)
    for row in run_entry["solver_scaling"]:
        print(
            f"{row['hops']:>5} {row['enumeration_seconds'] * 1e3:>9.3f} "
            f"{row['end_to_end_seconds'] * 1e3:>9.3f} "
            f"{row['cg_seconds'] * 1e3:>9.3f} {row['optimum_mbps']:>9.4f}"
        )
    print(
        f"serve: {serve_row['queries']} queries, "
        f"{serve_row['speedup']:.1f}x warm over cold "
        f"({serve_row['cold_qps']:.0f} -> {serve_row['warm_qps']:.0f} q/s), "
        f"p50 {serve_row['p50_latency_seconds'] * 1e3:.3f} ms, "
        f"p99 {serve_row['p99_latency_seconds'] * 1e3:.3f} ms"
    )
    print(
        f"online: {online_row['events']} events, "
        f"{online_row['speedup']:.1f}x incremental over rebuild "
        f"({online_row['rebuild_dps']:.0f} -> {online_row['online_dps']:.0f} "
        f"dec/s), p99 {online_row['p99_latency_seconds'] * 1e3:.3f} ms"
    )
    print(
        f"scale: {scale_row['nodes']} nodes, {scale_row['tiles']} tiles, "
        f"{scale_row['speedup']:.1f}x tiled over exact "
        f"({scale_row['exact_seconds'] * 1e3:.1f} -> "
        f"{scale_row['tiled_seconds'] * 1e3:.1f} ms), bracket "
        f"[{scale_row['lower_bound_mbps']:.3f}, "
        f"{scale_row['upper_bound_mbps']:.3f}] vs "
        f"{scale_row['exact_mbps']:.3f} Mbps"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
